//! Cold-cache throughput benchmark: the all-apps × four-design sweep used
//! to score simulator performance work.
//!
//! Clears the on-disk memo first so every point is actually simulated,
//! then prints per-point timings and the aggregate throughput table.
//!
//! Usage:
//!   DCL1_SCALE=smoke cargo run --release -p dcl1-bench --bin perf_sweep
//!   ... --no-fast-forward   # disable the idle fast-forward (A/B baseline)
//!   ... --keep-cache        # skip the cache clear (measure warm behavior)

use dcl1::{Design, GpuConfig, SimOptions};
use dcl1_bench::runner::{self, RunRequest};
use dcl1_bench::{Scale, Table};
use dcl1_workloads::all_apps;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast_forward = !args.iter().any(|a| a == "--no-fast-forward");
    let keep_cache = args.iter().any(|a| a == "--keep-cache");
    let scale = Scale::from_env();

    if !keep_cache {
        runner::clear_disk_cache();
    }
    let cfg = GpuConfig::default();
    let designs = [
        Design::Baseline,
        Design::Private { nodes: 40 },
        Design::Shared { nodes: 40 },
        Design::flagship(&cfg),
    ];
    let opts = SimOptions { fast_forward, ..SimOptions::default() };
    let mut reqs: Vec<RunRequest> = Vec::new();
    for app in all_apps() {
        for design in designs {
            reqs.push(RunRequest { app, design, cfg: cfg.clone(), opts });
        }
    }

    let t0 = std::time::Instant::now();
    let stats = runner::run_apps(&reqs, scale);
    let wall = t0.elapsed();

    let mut per_point = Table::new(
        format!("Per-point timings ({scale:?}, fast_forward={fast_forward})"),
        &["point", "sim-cycles", "wall s", "KHz"],
    );
    for t in runner::point_timings() {
        per_point.row(
            format!("{}/{}", t.app, t.design),
            vec![
                t.sim_cycles.to_string(),
                format!("{:.3}", t.wall_seconds),
                format!("{:.0}", t.khz()),
            ],
        );
    }
    println!("{per_point}");
    println!("{}", runner::throughput_summary());
    let total: u64 = stats.iter().map(|s| s.cycles).sum();
    println!(
        "sweep: {} points, {total} sim-cycles, {:.2} s end-to-end wall",
        stats.len(),
        wall.as_secs_f64()
    );
}
