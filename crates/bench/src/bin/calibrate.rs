//! Calibration tool: prints Fig-1-style metrics for every app under the
//! key designs, so workload parameters can be tuned against the paper's
//! reported characterizations.
//!
//! Usage: `cargo run --release -p dcl1-bench --bin calibrate [app ...]`
//! Environment: `DCL1_SCALE=full|quarter|smoke` (default quarter).

use dcl1::{Design, GpuConfig, SimOptions};
use dcl1_bench::{run_apps, RunRequest, Scale, Table};
use dcl1_workloads::all_apps;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_env();
    let apps: Vec<_> = if args.is_empty() {
        all_apps()
    } else {
        all_apps().into_iter().filter(|a| args.iter().any(|n| n == a.name)).collect()
    };

    let designs = [
        Design::Baseline,
        Design::BoostedBaseline(dcl1::design::BaselineBoost::Cache2x),
        Design::IdealSingleL1,
        Design::Private { nodes: 40 },
        Design::Shared { nodes: 40 },
        Design::Clustered { nodes: 40, clusters: 10, boost: false },
        Design::Clustered { nodes: 40, clusters: 10, boost: true },
    ];

    // 16x-capacity baseline for the capacity-sensitivity column.
    let cfg16 = GpuConfig { l1_bytes: 16 * 16 * 1024, ..GpuConfig::default() };

    let mut reqs = Vec::new();
    for app in &apps {
        for d in &designs {
            reqs.push(RunRequest::new(*app, *d));
        }
        reqs.push(RunRequest {
            app: *app,
            design: Design::Baseline,
            cfg: cfg16.clone(),
            opts: SimOptions::default(),
        });
    }

    let t0 = std::time::Instant::now();
    let stats = run_apps(&reqs, scale);
    let dt = t0.elapsed();

    let per = designs.len() + 1;
    let mut table = Table::new(
        format!("Calibration ({scale:?}, {} runs in {dt:.1?})", reqs.len()),
        &[
            "app", "repl", "miss", "16x", "util", "ipcB", "Pr40", "Sh40", "C10", "Boost",
            "Ideal", "replPr40", "missSh40",
        ],
    );
    for (i, app) in apps.iter().enumerate() {
        let base = &stats[i * per];
        let ideal = &stats[i * per + 2];
        let pr40 = &stats[i * per + 3];
        let sh40 = &stats[i * per + 4];
        let c10 = &stats[i * per + 5];
        let boost = &stats[i * per + 6];
        let b16 = &stats[i * per + 7];
        let marker = if app.replication_sensitive { "*" } else { " " };
        table.row(
            format!("{}{}", marker, app.name),
            vec![
                format!("{:.2}", base.replication_ratio()),
                format!("{:.2}", base.l1_miss_rate()),
                format!("{:.2}", b16.ipc() / base.ipc()),
                format!("{:.2}", base.max_port_utilization),
                format!("{:.2}", base.ipc()),
                format!("{:.2}", pr40.ipc() / base.ipc()),
                format!("{:.2}", sh40.ipc() / base.ipc()),
                format!("{:.2}", c10.ipc() / base.ipc()),
                format!("{:.2}", boost.ipc() / base.ipc()),
                format!("{:.2}", ideal.ipc() / base.ipc()),
                format!("{:.2}", pr40.replication_ratio()),
                format!("{:.2}", sh40.l1_miss_rate()),
            ],
        );
    }
    println!("{table}");
}
