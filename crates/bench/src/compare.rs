//! The performance-regression gate behind `perf_sweep --compare`.
//!
//! Diffs a freshly produced `BENCH_sweep.json` against a committed
//! baseline: the canonical stats digest must match exactly (determinism
//! is not noisy), aggregate simulation throughput must stay within a
//! noise threshold, pipeline-phase shares must not drift, and — when both
//! reports embed an alloc-probe fragment — steady-state allocation counts
//! must not grow. Everything else (memo hit rates, wall clock) is
//! reported as a note, never a failure.

use dcl1_obs::json::Json;
use std::fmt;

/// Maximum absolute drift allowed in any phase's share of total profiled
/// wall time (phase shares are wall-clock derived, so this is deliberately
/// generous — it catches a phase doubling, not scheduler jitter).
pub const PHASE_DRIFT_LIMIT: f64 = 0.25;

/// Default minimum acceptable `current/baseline` throughput ratio.
pub const DEFAULT_THROUGHPUT_THRESHOLD: f64 = 0.5;

/// Outcome of one baseline comparison.
#[derive(Debug, Clone, Default)]
pub struct CompareReport {
    /// Regressions that should fail the gate.
    pub failures: Vec<String>,
    /// Informational observations (matched digests, skipped legs, …).
    pub notes: Vec<String>,
}

impl CompareReport {
    /// True when no leg regressed.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

impl fmt::Display for CompareReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for n in &self.notes {
            writeln!(f, "note: {n}")?;
        }
        for x in &self.failures {
            writeln!(f, "FAIL: {x}")?;
        }
        if self.passed() {
            writeln!(f, "compare: PASS ({} leg note(s))", self.notes.len())?;
        } else {
            writeln!(f, "compare: FAIL ({} regression(s))", self.failures.len())?;
        }
        Ok(())
    }
}

fn str_field<'a>(doc: &'a Json, key: &str) -> Option<&'a str> {
    doc.get(key).and_then(Json::as_str)
}

fn num_field(doc: &Json, path: &[&str]) -> Option<f64> {
    let mut cur = doc;
    for key in path {
        cur = cur.get(key)?;
    }
    cur.as_f64()
}

/// Extracts `(phase name, nanos)` pairs from a report's `profile` array.
fn phases(doc: &Json) -> Vec<(String, f64)> {
    doc.get("profile")
        .and_then(Json::as_arr)
        .map(|arr| {
            arr.iter()
                .filter_map(|p| {
                    let name = p.get("phase")?.as_str()?.to_string();
                    let nanos = p.get("nanos")?.as_f64()?;
                    Some((name, nanos))
                })
                .collect()
        })
        .unwrap_or_default()
}

fn share_of(phases: &[(String, f64)], name: &str) -> f64 {
    let total: f64 = phases.iter().map(|(_, n)| n).sum();
    if total <= 0.0 {
        return 0.0;
    }
    phases.iter().find(|(p, _)| p == name).map_or(0.0, |(_, n)| n / total)
}

fn compare_digest(cur: &Json, base: &Json, report: &mut CompareReport) {
    let (cs, bs) = (str_field(cur, "scale"), str_field(base, "scale"));
    if cs != bs {
        report.notes.push(format!(
            "scales differ ({} vs {}) — digest comparison skipped",
            cs.unwrap_or("?"),
            bs.unwrap_or("?")
        ));
        return;
    }
    match (str_field(cur, "stats_digest"), str_field(base, "stats_digest")) {
        (Some(c), Some(b)) if c == b => {
            report.notes.push(format!("stats digest matches baseline ({c})"));
        }
        (Some(c), Some(b)) => {
            report.failures.push(format!(
                "stats digest changed: {c} (current) vs {b} (baseline) — simulator semantics \
                 moved; regenerate the baseline in the same change if this is intentional"
            ));
        }
        _ => report.notes.push("stats digest missing in one report — skipped".to_string()),
    }
}

fn compare_throughput(cur: &Json, base: &Json, threshold: f64, report: &mut CompareReport) {
    let (c, b) = (
        num_field(cur, &["totals", "sim_khz"]),
        num_field(base, &["totals", "sim_khz"]),
    );
    match (c, b) {
        (Some(c), Some(b)) if b > 0.0 => {
            let ratio = c / b;
            if ratio < threshold {
                report.failures.push(format!(
                    "throughput regressed: {c:.1} KHz vs baseline {b:.1} KHz \
                     (ratio {ratio:.3} < threshold {threshold:.3})"
                ));
            } else {
                report.notes.push(format!(
                    "throughput {c:.1} KHz vs baseline {b:.1} KHz (ratio {ratio:.3})"
                ));
            }
        }
        _ => report.notes.push("sim_khz missing in one report — throughput skipped".to_string()),
    }
}

fn compare_phases(cur: &Json, base: &Json, report: &mut CompareReport) {
    let (cp, bp) = (phases(cur), phases(base));
    if cp.is_empty() || bp.is_empty() {
        report.notes.push("phase profile missing in one report — skipped".to_string());
        return;
    }
    let mut names: Vec<&str> = cp.iter().chain(&bp).map(|(n, _)| n.as_str()).collect();
    names.sort_unstable();
    names.dedup();
    for name in names {
        let (c, b) = (share_of(&cp, name), share_of(&bp, name));
        let drift = (c - b).abs();
        if drift > PHASE_DRIFT_LIMIT {
            report.failures.push(format!(
                "phase `{name}` share drifted {drift:.2} (current {c:.2} vs baseline {b:.2}, \
                 limit {PHASE_DRIFT_LIMIT:.2})"
            ));
        }
    }
    report.notes.push(format!("phase shares within ±{PHASE_DRIFT_LIMIT:.2} across {} phase(s)", cp.len()));
}

fn compare_allocs(cur: &Json, base: &Json, threshold: f64, report: &mut CompareReport) {
    let (ca, ba) = (cur.get("allocs"), base.get("allocs"));
    let (Some(ca), Some(ba)) = (ca, ba) else {
        report.notes.push("alloc fragment missing in one report — skipped".to_string());
        return;
    };
    if let Some(probes) = ca.get("probes").and_then(Json::as_arr) {
        for p in probes {
            let name = p.get("name").and_then(Json::as_str).unwrap_or("?");
            let allocs = p.get("allocs").and_then(Json::as_f64).unwrap_or(0.0);
            let base_allocs = ba
                .get("probes")
                .and_then(Json::as_arr)
                .and_then(|arr| {
                    arr.iter().find(|b| b.get("name").and_then(Json::as_str) == Some(name))
                })
                .and_then(|b| b.get("allocs"))
                .and_then(Json::as_f64)
                .unwrap_or(0.0);
            if base_allocs == 0.0 && allocs > 0.0 {
                report.failures.push(format!(
                    "steady-state probe `{name}` now allocates ({allocs} allocs; baseline 0)"
                ));
            }
        }
    }
    match (
        num_field(ca, &["system", "per_step"]),
        num_field(ba, &["system", "per_step"]),
    ) {
        (Some(c), Some(b)) if b > 0.0 => {
            // A throughput threshold of r tolerates a 1/r growth here.
            let limit = b / threshold.max(f64::MIN_POSITIVE);
            if c > limit {
                report.failures.push(format!(
                    "system allocs/step grew: {c:.2} vs baseline {b:.2} (limit {limit:.2})"
                ));
            } else {
                report.notes.push(format!("system allocs/step {c:.2} vs baseline {b:.2}"));
            }
        }
        _ => report.notes.push("system alloc rate missing in one report — skipped".to_string()),
    }
}

/// The memo-tier registry counters every sweep report must carry; the
/// gate fails when one disappears (a silent telemetry regression).
const MEMO_FIELDS: [&str; 5] =
    ["memo.mem_hits", "memo.disk_hits", "memo.shared_hits", "memo.misses", "memo.simulated"];

fn compare_memo(cur: &Json, report: &mut CompareReport) {
    let Some(reg) = cur.get("registry") else {
        report.notes.push("registry missing in current report — memo schema skipped".to_string());
        return;
    };
    let mut vals = [0.0; MEMO_FIELDS.len()];
    for (i, field) in MEMO_FIELDS.iter().enumerate() {
        match reg.get(field).and_then(Json::as_f64) {
            Some(v) => vals[i] = v,
            None => {
                report
                    .failures
                    .push(format!("registry lost `{field}` — memo telemetry regressed"));
                return;
            }
        }
    }
    // Every sweep point must be accounted for: served by a tier, actually
    // simulated, or quarantined by the supervisor. An undercount means a
    // tier stopped reporting. (`totals.points` is the planned grid size;
    // the `points` array lists only the simulated ones.)
    let points = num_field(cur, &["totals", "points"]).unwrap_or(0.0);
    let quarantined = reg.get("memo.quarantined_points").and_then(Json::as_f64).unwrap_or(0.0);
    let served = vals[0] + vals[1] + vals[2] + vals[4] + quarantined;
    if points > 0.0 && served < points {
        report.failures.push(format!(
            "memo accounting undercounts: {served} hits+simulated+quarantined \
             for {points} point(s)"
        ));
    } else {
        report.notes.push(format!(
            "memo telemetry intact ({} field(s); {served} served for {points} point(s))",
            MEMO_FIELDS.len()
        ));
    }
}

/// Diffs two `BENCH_sweep.json` documents (current vs committed baseline).
///
/// # Errors
///
/// Returns a message when either document fails to parse as JSON.
pub fn compare_reports(
    current: &str,
    baseline: &str,
    threshold: f64,
) -> Result<CompareReport, String> {
    let cur = Json::parse(current).map_err(|e| format!("current report: {e}"))?;
    let base = Json::parse(baseline).map_err(|e| format!("baseline report: {e}"))?;
    let mut report = CompareReport::default();
    compare_digest(&cur, &base, &mut report);
    compare_throughput(&cur, &base, threshold, &mut report);
    compare_phases(&cur, &base, &mut report);
    compare_allocs(&cur, &base, threshold, &mut report);
    compare_memo(&cur, &mut report);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(digest: &str, khz: f64, issue_nanos: f64, mem_nanos: f64) -> String {
        format!(
            "{{\"scale\": \"Smoke\", \"stats_digest\": \"{digest}\", \
             \"totals\": {{\"sim_khz\": {khz}}}, \
             \"profile\": [{{\"phase\": \"issue\", \"nanos\": {issue_nanos}, \"count\": 1}}, \
                           {{\"phase\": \"mem\", \"nanos\": {mem_nanos}, \"count\": 1}}]}}"
        )
    }

    #[test]
    fn identical_reports_pass() {
        let d = doc("abc123", 500.0, 60.0, 40.0);
        let r = compare_reports(&d, &d, DEFAULT_THROUGHPUT_THRESHOLD).unwrap();
        assert!(r.passed(), "{r}");
        assert!(r.notes.iter().any(|n| n.contains("digest matches")));
    }

    #[test]
    fn digest_change_fails() {
        let cur = doc("aaaa", 500.0, 60.0, 40.0);
        let base = doc("bbbb", 500.0, 60.0, 40.0);
        let r = compare_reports(&cur, &base, 0.5).unwrap();
        assert!(!r.passed());
        assert!(r.failures[0].contains("stats digest changed"));
    }

    #[test]
    fn throughput_regression_fails_but_noise_passes() {
        let base = doc("d", 1000.0, 60.0, 40.0);
        let slow = doc("d", 400.0, 60.0, 40.0);
        let r = compare_reports(&slow, &base, 0.5).unwrap();
        assert!(r.failures.iter().any(|f| f.contains("throughput regressed")), "{r}");

        let noisy = doc("d", 800.0, 60.0, 40.0);
        let r = compare_reports(&noisy, &base, 0.5).unwrap();
        assert!(r.passed(), "{r}");
    }

    #[test]
    fn phase_share_drift_fails() {
        let base = doc("d", 500.0, 90.0, 10.0);
        let drifted = doc("d", 500.0, 10.0, 90.0);
        let r = compare_reports(&drifted, &base, 0.5).unwrap();
        assert!(r.failures.iter().any(|f| f.contains("phase `issue` share drifted")), "{r}");
    }

    #[test]
    fn scale_mismatch_skips_digest_not_throughput() {
        let cur = doc("aaaa", 500.0, 60.0, 40.0).replace("Smoke", "Quarter");
        let base = doc("bbbb", 500.0, 60.0, 40.0);
        let r = compare_reports(&cur, &base, 0.5).unwrap();
        assert!(r.passed(), "{r}");
        assert!(r.notes.iter().any(|n| n.contains("scales differ")));
    }

    #[test]
    fn alloc_growth_fails() {
        let mut cur = doc("d", 500.0, 60.0, 40.0);
        let mut base = cur.clone();
        base.insert_str(
            base.len() - 1,
            ", \"allocs\": {\"probes\": [{\"name\": \"mshr\", \"allocs\": 0, \"bytes\": 0}], \
             \"system\": {\"per_step\": 4.0}}",
        );
        cur.insert_str(
            cur.len() - 1,
            ", \"allocs\": {\"probes\": [{\"name\": \"mshr\", \"allocs\": 7, \"bytes\": 64}], \
             \"system\": {\"per_step\": 40.0}}",
        );
        let r = compare_reports(&cur, &base, 0.5).unwrap();
        assert!(r.failures.iter().any(|f| f.contains("probe `mshr` now allocates")), "{r}");
        assert!(r.failures.iter().any(|f| f.contains("allocs/step grew")), "{r}");
    }

    #[test]
    fn missing_memo_field_fails_the_schema_leg() {
        let base = doc("d", 500.0, 60.0, 40.0);
        let mut cur = base.clone();
        // Registry present but memo.shared_hits dropped.
        cur.insert_str(
            cur.len() - 1,
            ", \"registry\": {\"memo.mem_hits\": 1, \"memo.disk_hits\": 2, \
             \"memo.misses\": 0, \"memo.simulated\": 3}, \"points\": []",
        );
        let r = compare_reports(&cur, &base, 0.5).unwrap();
        assert!(
            r.failures.iter().any(|f| f.contains("registry lost `memo.shared_hits`")),
            "{r}"
        );
    }

    #[test]
    fn memo_undercount_fails_and_full_accounting_passes() {
        let base = doc("d", 500.0, 60.0, 40.0);
        let with_reg = |mem: u64, sim: u64| {
            let mut s = base.clone().replace("\"totals\": {", "\"totals\": {\"points\": 2, ");
            s.insert_str(
                s.len() - 1,
                &format!(
                    ", \"registry\": {{\"memo.mem_hits\": {mem}, \"memo.disk_hits\": 0, \
                     \"memo.shared_hits\": 0, \"memo.misses\": {sim}, \
                     \"memo.simulated\": {sim}}}"
                ),
            );
            s
        };
        let r = compare_reports(&with_reg(0, 1), &base, 0.5).unwrap();
        assert!(r.failures.iter().any(|f| f.contains("memo accounting undercounts")), "{r}");
        let r = compare_reports(&with_reg(1, 1), &base, 0.5).unwrap();
        assert!(r.passed(), "{r}");
        assert!(r.notes.iter().any(|n| n.contains("memo telemetry intact")));
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(compare_reports("{", "{}", 0.5).is_err());
    }
}
