//! Simulation execution: single runs and parallel sweeps.

use dcl1::{Design, GpuConfig, GpuSystem, RunStats, SimOptions};
use dcl1_workloads::AppSpec;
use parking_lot::Mutex;

/// How much of each wavefront's trace to simulate (CTA grids stay full,
/// so machine occupancy is always realistic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Full-length traces.
    Full,
    /// Quarter-length traces — what EXPERIMENTS.md records.
    Quarter,
    /// Sixteenth-length traces — smoke tests.
    Smoke,
}

impl Scale {
    /// Numerator/denominator applied to the per-wavefront trace length.
    pub fn ratio(self) -> (u32, u32) {
        match self {
            Scale::Full => (1, 1),
            Scale::Quarter => (1, 4),
            Scale::Smoke => (1, 16),
        }
    }

    /// Reads the scale from the `DCL1_SCALE` environment variable
    /// (`full` / `quarter` / `smoke`), defaulting to `Quarter` so plain
    /// `cargo bench` finishes in minutes.
    pub fn from_env() -> Scale {
        match std::env::var("DCL1_SCALE").as_deref() {
            Ok("full") => Scale::Full,
            Ok("smoke") => Scale::Smoke,
            _ => Scale::Quarter,
        }
    }
}

/// One (application, design, options) point to simulate.
#[derive(Debug, Clone)]
pub struct RunRequest {
    /// Application to run.
    pub app: AppSpec,
    /// Hierarchy design.
    pub design: Design,
    /// Machine configuration.
    pub cfg: GpuConfig,
    /// Simulation options.
    pub opts: SimOptions,
}

impl RunRequest {
    /// A request with the default machine and options.
    pub fn new(app: AppSpec, design: Design) -> Self {
        RunRequest { app, design, cfg: GpuConfig::default(), opts: SimOptions::default() }
    }
}

/// Runs one simulation point at the given scale.
///
/// Results are memoized for the lifetime of the process, so experiment
/// modules that share points (e.g. every figure's baseline runs) pay for
/// them once.
///
/// # Panics
///
/// Panics if the design fails to resolve (an experiment-definition bug).
pub fn run_app(req: &RunRequest, scale: Scale) -> RunStats {
    let key = format!("{}|{:?}|{:?}|{:?}|{:?}", req.app.name, req.app, req.design, req.cfg, req.opts);
    let key = format!("{key}|{scale:?}");
    if let Some(hit) = cache().lock().get(&key) {
        return hit.clone();
    }
    let (num, den) = scale.ratio();
    let app = req.app.scaled(num, den);
    // Warm the caches over the first third of the kernel, then measure —
    // standard simulation methodology; keeps short scaled runs from being
    // dominated by cold misses.
    let mut opts = req.opts;
    if opts.warmup_instructions == 0 {
        opts.warmup_instructions = app.total_instructions() / 3;
    }
    let mut sys = GpuSystem::build(&req.cfg, &req.design, &app, opts)
        .unwrap_or_else(|e| panic!("{}: {e}", req.design.name()));
    let stats = sys.run();
    cache().lock().insert(key, stats.clone());
    stats
}

fn cache() -> &'static Mutex<std::collections::HashMap<String, RunStats>> {
    static CACHE: std::sync::OnceLock<Mutex<std::collections::HashMap<String, RunStats>>> =
        std::sync::OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(std::collections::HashMap::new()))
}

/// Runs many simulation points across all CPU cores, preserving input
/// order in the output.
pub fn run_apps(reqs: &[RunRequest], scale: Scale) -> Vec<RunStats> {
    let results: Vec<Mutex<Option<RunStats>>> =
        reqs.iter().map(|_| Mutex::new(None)).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    crossbeam::scope(|s| {
        for _ in 0..workers.min(reqs.len().max(1)) {
            s.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= reqs.len() {
                    break;
                }
                let stats = run_app(&reqs[i], scale);
                *results[i].lock() = Some(stats);
            });
        }
    })
    .expect("worker panicked");
    results
        .into_iter()
        .map(|m| m.into_inner().expect("every request was processed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcl1_workloads::by_name;

    #[test]
    fn scale_ratios() {
        assert_eq!(Scale::Full.ratio(), (1, 1));
        assert_eq!(Scale::Smoke.ratio(), (1, 16));
    }

    #[test]
    fn parallel_runner_preserves_order() {
        let app = by_name("C-BLK").unwrap();
        let reqs = vec![
            RunRequest::new(app, Design::Baseline),
            RunRequest::new(app, Design::Private { nodes: 40 }),
        ];
        let out = run_apps(&reqs, Scale::Smoke);
        assert_eq!(out[0].design, "Baseline");
        assert_eq!(out[1].design, "Pr40");
        assert!(out.iter().all(|s| s.instructions > 0));
    }
}
