//! Simulation execution: single runs and supervised parallel sweeps.
//!
//! Results are memoized in a tiered [`dcl1_store::ResultStore`], keyed by
//! a structured hash of the full (app, design, config, options, scale)
//! point: a sharded in-memory LRU (`DCL1_CACHE_MEM_BUDGET_BYTES`), a
//! fan-out checksummed disk tier under `target/dcl1-cache/` (or
//! `DCL1_CACHE_DIR`, budget `DCL1_CACHE_BUDGET_BYTES`), and an optional
//! shared read-through tier (`DCL1_CACHE_SHARED_DIR`, write-back
//! controlled by `DCL1_CACHE_SHARED_WRITEBACK`). Experiment modules that
//! share points (e.g. every figure's baseline runs) pay for them once per
//! machine — or, with a shared tier, once per fleet. Concurrent requests
//! for the same uncomputed key are deduplicated by per-key single-flight:
//! one thread simulates, the rest wait and read the published result.
//!
//! Sweeps run under supervision ([`run_apps_supervised`]): each point is
//! executed behind panic containment with retry-and-deterministic-backoff
//! ([`dcl1_resilience::supervise`]), hangs are converted into structured
//! livelock/deadline errors by the machine's progress watchdog, and a point
//! that exhausts its retry budget is *quarantined* — reported in the sweep
//! outcome while every other point completes. On-disk cache entries carry a
//! content checksum and are written via temp-file + atomic rename (safe for
//! concurrent writers); a corrupt entry is moved to a `quarantine/` subdir
//! and transparently recomputed. An optional append-only checkpoint journal
//! ([`set_journal`] / [`resume_from_journal`]) makes long sweeps resumable
//! after a kill, and deterministic fault injection ([`set_chaos`]) exists
//! to prove all of the above actually works.

use dcl1::{Design, GpuConfig, GpuSystem, ProgressHook, RunStats, SimError, SimOptions};
use dcl1_common::{checksum, journal};
use dcl1_obs::profiler::{Phase, PhaseProfiler};
use dcl1_obs::progress::{ProgressEvent, ProgressSink, ProgressStage};
use dcl1_obs::recovery::RecoveryLog;
use dcl1_obs::registry::{CounterId, GaugeId, HistogramId, Registry};
use dcl1_resilience::{
    supervise, Chaos, QuarantineRecord, RetryPolicy, SupervisionEvent,
};
use dcl1_store::{
    Codec, Corruption, DiskReload, DiskTierConfig, Flight, ResultStore, StoreConfig, StoreStats,
};
use dcl1_workloads::AppSpec;
use std::collections::BTreeSet;
use std::hash::{Hash, Hasher};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// How much of each wavefront's trace to simulate (CTA grids stay full,
/// so machine occupancy is always realistic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Full-length traces.
    Full,
    /// Quarter-length traces — what EXPERIMENTS.md records.
    Quarter,
    /// Sixteenth-length traces — smoke tests.
    Smoke,
}

impl Scale {
    /// Numerator/denominator applied to the per-wavefront trace length.
    pub fn ratio(self) -> (u32, u32) {
        match self {
            Scale::Full => (1, 1),
            Scale::Quarter => (1, 4),
            Scale::Smoke => (1, 16),
        }
    }

    /// Reads the scale from the `DCL1_SCALE` environment variable
    /// (`full` / `quarter` / `smoke`), defaulting to `Quarter` so plain
    /// `cargo bench` finishes in minutes.
    pub fn from_env() -> Scale {
        match std::env::var("DCL1_SCALE").as_deref() {
            Ok("full") => Scale::Full,
            Ok("smoke") => Scale::Smoke,
            _ => Scale::Quarter,
        }
    }
}

/// One (application, design, options) point to simulate.
#[derive(Debug, Clone)]
pub struct RunRequest {
    /// Application to run.
    pub app: AppSpec,
    /// Hierarchy design.
    pub design: Design,
    /// Machine configuration.
    pub cfg: GpuConfig,
    /// Simulation options.
    pub opts: SimOptions,
}

impl RunRequest {
    /// A request with the default machine and options.
    pub fn new(app: AppSpec, design: Design) -> Self {
        RunRequest { app, design, cfg: GpuConfig::default(), opts: SimOptions::default() }
    }
}

// ---------------------------------------------------------------------------
// Memo key
// ---------------------------------------------------------------------------

/// Bump when the meaning of cached results changes (simulator semantics,
/// `RunStats` fields, trace generation, …) so stale on-disk entries are
/// never read back. The version is part of the cache directory name.
///
/// v2: `RunStats` grew the stall-attribution fields.
///
/// v3: the sharded machine changed transaction-id assignment, RTT-meter
/// merge order, and presence accounting to be partition-independent, which
/// moves some floating-point statistics relative to the v2 machine.
const CACHE_SCHEMA_VERSION: u32 = 3;

/// 128-bit FNV-1a, used instead of `DefaultHasher` because the on-disk
/// cache needs a hash that is stable across processes and Rust releases.
struct Fnv128 {
    state: u128,
}

impl Fnv128 {
    const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

    fn new() -> Self {
        Fnv128 { state: Self::OFFSET }
    }

    fn value(&self) -> u128 {
        self.state
    }
}

impl Hasher for Fnv128 {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(Self::PRIME);
        }
    }

    // Hasher contract: fold the 128-bit state to its low 64 bits.
    #[expect(clippy::cast_possible_truncation)]
    fn finish(&self) -> u64 {
        self.state as u64
    }
}

/// The full structured identity of a simulation point.
#[derive(Hash)]
struct MemoKey<'a> {
    schema: u32,
    app: &'a AppSpec,
    design: &'a Design,
    cfg: &'a GpuConfig,
    opts: &'a SimOptions,
    scale: Scale,
}

fn memo_key(req: &RunRequest, scale: Scale) -> u128 {
    let key = MemoKey {
        schema: CACHE_SCHEMA_VERSION,
        app: &req.app,
        design: &req.design,
        cfg: &req.cfg,
        opts: &req.opts,
        scale,
    };
    let mut h = Fnv128::new();
    key.hash(&mut h);
    h.value()
}

/// The memo key of a request as a fixed-width hex string — the identity
/// under which its result is cached. Exposed so determinism tests can
/// assert that the shard count is *not* part of a point's identity (a
/// sharded and a sequential run of the same point must share one cache
/// entry, which is only sound because their stats are byte-identical).
pub fn memo_key_hex(req: &RunRequest, scale: Scale) -> String {
    format!("{:032x}", memo_key(req, scale))
}

// ---------------------------------------------------------------------------
// On-disk cache
// ---------------------------------------------------------------------------

/// Appends the schema-version component to a cache base directory.
/// Entries from other schema versions live in sibling `v<N>` directories
/// and are never read back — stale results cannot leak across a bump.
fn versioned_cache_dir(base: PathBuf) -> PathBuf {
    base.join(format!("v{CACHE_SCHEMA_VERSION}"))
}

/// Directory holding persisted results: `$DCL1_CACHE_DIR` if set, else
/// `target/dcl1-cache/v<schema>/` in the workspace.
pub fn disk_cache_dir() -> PathBuf {
    let base = std::env::var_os("DCL1_CACHE_DIR").map(PathBuf::from).unwrap_or_else(|| {
        std::env::var_os("CARGO_TARGET_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| {
                PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../target"))
            })
            .join("dcl1-cache")
    });
    versioned_cache_dir(base)
}

/// Deletes every persisted result (all schema versions).
pub fn clear_disk_cache() {
    if let Some(parent) = disk_cache_dir().parent() {
        let _ = std::fs::remove_dir_all(parent);
    }
}

/// Serializes `f64` as its exact bit pattern so a disk round-trip is
/// bit-identical (decimal formatting would not be).
fn fmt_f64(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn parse_f64(s: &str) -> Option<f64> {
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

fn fmt_vec(v: &[u64]) -> String {
    v.iter().map(|x| x.to_string()).collect::<Vec<_>>().join(",")
}

fn parse_vec(s: &str) -> Option<Vec<u64>> {
    if s.is_empty() {
        return Some(Vec::new());
    }
    s.split(',').map(|x| x.parse().ok()).collect()
}

fn serialize_stats(s: &RunStats) -> String {
    let mut out = String::new();
    let mut kv = |k: &str, v: String| {
        out.push_str(k);
        out.push(' ');
        out.push_str(&v);
        out.push('\n');
    };
    kv("cycles", s.cycles.to_string());
    kv("instructions", s.instructions.to_string());
    kv("l1_accesses", s.l1_accesses.to_string());
    kv("l1_hits", s.l1_hits.to_string());
    kv("l1_misses", s.l1_misses.to_string());
    kv("l1_replicated_misses", s.l1_replicated_misses.to_string());
    kv("mean_replicas", fmt_f64(s.mean_replicas));
    kv("max_port_utilization", fmt_f64(s.max_port_utilization));
    kv("mean_port_utilization", fmt_f64(s.mean_port_utilization));
    kv("max_reply_link_utilization", fmt_f64(s.max_reply_link_utilization));
    kv("mean_load_rtt", fmt_f64(s.mean_load_rtt));
    kv("p50_load_rtt", s.p50_load_rtt.to_string());
    kv("p95_load_rtt", s.p95_load_rtt.to_string());
    kv("p99_load_rtt", s.p99_load_rtt.to_string());
    kv("l2_accesses", s.l2_accesses.to_string());
    kv("l2_misses", s.l2_misses.to_string());
    kv("dram_requests", s.dram_requests.to_string());
    kv("dram_row_hit_rate", fmt_f64(s.dram_row_hit_rate));
    kv("noc_flits", fmt_vec(&s.noc_flits));
    kv("per_node_accesses", fmt_vec(&s.per_node_accesses));
    kv("stall_drained", s.stall_drained.to_string());
    kv("stall_alu_busy", s.stall_alu_busy.to_string());
    kv("stall_fill_wait", s.stall_fill_wait.to_string());
    kv("stall_mem_outbox", s.stall_mem_outbox.to_string());
    kv("stall_mem_l1_queue", s.stall_mem_l1_queue.to_string());
    kv("stall_mem_noc", s.stall_mem_noc.to_string());
    kv("l1_mshr_stall_cycles", s.l1_mshr_stall_cycles.to_string());
    kv("l1_queue_stall_cycles", s.l1_queue_stall_cycles.to_string());
    // Last because the free-form design name is rest-of-line.
    kv("design", s.design.clone());
    out
}

fn deserialize_stats(text: &str) -> Option<RunStats> {
    let mut s = RunStats::default();
    let mut seen = 0usize;
    for line in text.lines() {
        let (k, v) = line.split_once(' ')?;
        match k {
            "cycles" => s.cycles = v.parse().ok()?,
            "instructions" => s.instructions = v.parse().ok()?,
            "l1_accesses" => s.l1_accesses = v.parse().ok()?,
            "l1_hits" => s.l1_hits = v.parse().ok()?,
            "l1_misses" => s.l1_misses = v.parse().ok()?,
            "l1_replicated_misses" => s.l1_replicated_misses = v.parse().ok()?,
            "mean_replicas" => s.mean_replicas = parse_f64(v)?,
            "max_port_utilization" => s.max_port_utilization = parse_f64(v)?,
            "mean_port_utilization" => s.mean_port_utilization = parse_f64(v)?,
            "max_reply_link_utilization" => s.max_reply_link_utilization = parse_f64(v)?,
            "mean_load_rtt" => s.mean_load_rtt = parse_f64(v)?,
            "p50_load_rtt" => s.p50_load_rtt = v.parse().ok()?,
            "p95_load_rtt" => s.p95_load_rtt = v.parse().ok()?,
            "p99_load_rtt" => s.p99_load_rtt = v.parse().ok()?,
            "l2_accesses" => s.l2_accesses = v.parse().ok()?,
            "l2_misses" => s.l2_misses = v.parse().ok()?,
            "dram_requests" => s.dram_requests = v.parse().ok()?,
            "dram_row_hit_rate" => s.dram_row_hit_rate = parse_f64(v)?,
            "noc_flits" => s.noc_flits = parse_vec(v)?,
            "per_node_accesses" => s.per_node_accesses = parse_vec(v)?,
            "stall_drained" => s.stall_drained = v.parse().ok()?,
            "stall_alu_busy" => s.stall_alu_busy = v.parse().ok()?,
            "stall_fill_wait" => s.stall_fill_wait = v.parse().ok()?,
            "stall_mem_outbox" => s.stall_mem_outbox = v.parse().ok()?,
            "stall_mem_l1_queue" => s.stall_mem_l1_queue = v.parse().ok()?,
            "stall_mem_noc" => s.stall_mem_noc = v.parse().ok()?,
            "l1_mshr_stall_cycles" => s.l1_mshr_stall_cycles = v.parse().ok()?,
            "l1_queue_stall_cycles" => s.l1_queue_stall_cycles = v.parse().ok()?,
            "design" => s.design = v.to_string(),
            _ => return None,
        }
        seen += 1;
    }
    // A truncated file (e.g. interrupted write) must not parse.
    if seen == 29 {
        Some(s)
    } else {
        None
    }
}

/// Bridges `RunStats` across the store's disk boundary. The serialized
/// schema (and `CACHE_SCHEMA_VERSION`) stays in this file — simcheck's
/// `stats_schema` rule audits it here — while the store handles framing,
/// checksums, atomic writes, fan-out, and quarantine.
struct StatsCodec;

impl Codec<RunStats> for StatsCodec {
    fn encode(&self, value: &RunStats) -> String {
        serialize_stats(value)
    }

    fn decode(&self, body: &str) -> Option<RunStats> {
        deserialize_stats(body)
    }
}

/// Default in-memory tier budget: 256 MiB holds ~500k smoke-scale
/// entries — effectively "everything" for today's sweeps while bounding a
/// future `dcl1d` daemon's resident set.
const DEFAULT_MEM_BUDGET_BYTES: u64 = 256 << 20;

/// In-memory LRU shard count: enough that a 16-worker sweep rarely
/// contends on one shard lock, small enough that per-shard budgets stay
/// meaningful.
const MEM_SHARDS: usize = 8;

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| v.trim().parse().ok())
}

/// The process-wide tiered result store, built lazily from the
/// environment on first memo use:
///
/// * mem tier — `DCL1_CACHE_MEM_BUDGET_BYTES` (default 256 MiB);
/// * disk tier — [`disk_cache_dir`], budget `DCL1_CACHE_BUDGET_BYTES`
///   (default unbounded), flat-layout entries migrated and stale `v<N>`
///   siblings purged on open;
/// * shared tier — `DCL1_CACHE_SHARED_DIR` (schema-versioned subdir is
///   appended), read-through with write-back unless
///   `DCL1_CACHE_SHARED_WRITEBACK` is `0`/`off`/`false`. Never migrated
///   or purged: other hosts of the fleet may still be on an older schema.
fn store() -> &'static ResultStore<RunStats> {
    static STORE: std::sync::OnceLock<ResultStore<RunStats>> = std::sync::OnceLock::new();
    STORE.get_or_init(|| {
        let shared = std::env::var_os("DCL1_CACHE_SHARED_DIR").map(|dir| DiskTierConfig {
            root: versioned_cache_dir(PathBuf::from(dir)),
            budget_bytes: None,
            migrate_flat: false,
            purge_stale_siblings: false,
        });
        let shared_writeback = !matches!(
            std::env::var("DCL1_CACHE_SHARED_WRITEBACK").as_deref(),
            Ok("0") | Ok("off") | Ok("false")
        );
        ResultStore::open(
            &StoreConfig {
                mem_budget_bytes: env_u64("DCL1_CACHE_MEM_BUDGET_BYTES")
                    .unwrap_or(DEFAULT_MEM_BUDGET_BYTES),
                mem_shards: MEM_SHARDS,
                disk: Some(DiskTierConfig {
                    root: disk_cache_dir(),
                    budget_bytes: env_u64("DCL1_CACHE_BUDGET_BYTES"),
                    migrate_flat: true,
                    purge_stale_siblings: true,
                }),
                shared,
                shared_writeback,
            },
            StatsCodec,
        )
    })
}

// ---------------------------------------------------------------------------
// Telemetry
// ---------------------------------------------------------------------------

/// Wall-time/throughput record for one actually-simulated point.
#[derive(Debug, Clone)]
pub struct PointTiming {
    /// Application name.
    pub app: &'static str,
    /// Design name.
    pub design: String,
    /// Core cycles the run simulated.
    pub sim_cycles: u64,
    /// Wall-clock seconds the simulation took.
    pub wall_seconds: f64,
    /// Pipeline-phase wall-time breakdown for this point.
    pub profile: PhaseProfiler,
}

impl PointTiming {
    /// Simulated kilo-cycles per wall second.
    pub fn khz(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            0.0
        } else {
            self.sim_cycles as f64 / self.wall_seconds / 1e3
        }
    }
}

/// Aggregate sweep-throughput counters for this process: the tier
/// breakdown of the result store plus the simulate-side totals.
#[derive(Debug, Clone, Copy, Default)]
pub struct MemoStats {
    /// Points served from the in-memory LRU tier.
    pub mem_hits: u64,
    /// Points served from the local on-disk tier.
    pub disk_hits: u64,
    /// Points served from the shared read-through tier.
    pub shared_hits: u64,
    /// Lookups that fell through every tier.
    pub misses: u64,
    /// Points actually simulated.
    pub simulated: u64,
    /// In-memory entries evicted to stay under the byte budget.
    pub mem_evictions: u64,
    /// Disk entries evicted by the GC budget.
    pub disk_evictions: u64,
    /// Bytes held by the in-memory tier.
    pub mem_bytes: u64,
    /// Bytes held by the local disk tier.
    pub disk_bytes: u64,
    /// Threads that blocked behind another thread computing the same key.
    pub flight_waits: u64,
    /// Legacy flat-layout entries migrated into the fan-out at open.
    pub migrated_entries: u64,
    /// Core cycles across simulated points.
    pub sim_cycles: u64,
    /// Wall nanoseconds across simulated points.
    pub wall_nanos: u64,
}

impl MemoStats {
    /// Points served without simulating, across every tier.
    pub fn total_hits(&self) -> u64 {
        self.mem_hits + self.disk_hits + self.shared_hits
    }

    /// Fraction of accounted points served without simulating. Counts
    /// every tier (shared hits included — omitting them once let the
    /// printed rate exceed 100%) against hits + simulated points.
    pub fn hit_rate(&self) -> f64 {
        let total = self.total_hits() + self.simulated;
        if total == 0 {
            0.0
        } else {
            self.total_hits() as f64 / total as f64
        }
    }
}

static SIMULATED: AtomicU64 = AtomicU64::new(0);
static SIM_CYCLES: AtomicU64 = AtomicU64::new(0);
static WALL_NANOS: AtomicU64 = AtomicU64::new(0);

/// Returns this process's sweep-throughput counters.
pub fn memo_stats() -> MemoStats {
    let s: StoreStats = store().stats();
    MemoStats {
        mem_hits: s.mem_hits,
        disk_hits: s.disk_hits,
        shared_hits: s.shared_hits,
        misses: s.misses,
        simulated: SIMULATED.load(Ordering::Relaxed),
        mem_evictions: s.mem_evictions,
        disk_evictions: s.disk_evictions,
        mem_bytes: s.mem_bytes,
        disk_bytes: s.disk_bytes,
        flight_waits: s.flight_waits,
        migrated_entries: s.migrated_entries,
        sim_cycles: SIM_CYCLES.load(Ordering::Relaxed),
        wall_nanos: WALL_NANOS.load(Ordering::Relaxed),
    }
}

/// Per-point timing records for every point simulated by this process.
pub fn point_timings() -> Vec<PointTiming> {
    timings().lock().expect("timings lock").clone()
}

/// Builds the end-of-sweep throughput table the `experiments` binary
/// prints: total simulated cycles, wall time, aggregate simulation speed,
/// and how many points the memo layers absorbed.
pub fn throughput_summary() -> crate::Table {
    let m = memo_stats();
    let wall = m.wall_nanos as f64 / 1e9;
    let khz = if wall > 0.0 { m.sim_cycles as f64 / wall / 1e3 } else { 0.0 };
    let mut t = crate::Table::new("Sweep throughput", &["metric", "value"]);
    t.row("points simulated", vec![m.simulated.to_string()]);
    t.row("points from memo (RAM)", vec![m.mem_hits.to_string()]);
    t.row("points from memo (disk)", vec![m.disk_hits.to_string()]);
    t.row("points from memo (shared)", vec![m.shared_hits.to_string()]);
    t.row("memo evictions (RAM/disk)", vec![format!("{}/{}", m.mem_evictions, m.disk_evictions)]);
    t.row("memo hit rate", vec![format!("{:.1}%", 100.0 * m.hit_rate())]);
    t.row("sim-cycles", vec![m.sim_cycles.to_string()]);
    t.row("sim wall seconds", vec![format!("{wall:.2}")]);
    t.row("sim speed (KHz)", vec![format!("{khz:.0}")]);
    t
}

fn timings() -> &'static Mutex<Vec<PointTiming>> {
    static TIMINGS: std::sync::OnceLock<Mutex<Vec<PointTiming>>> = std::sync::OnceLock::new();
    TIMINGS.get_or_init(|| Mutex::new(Vec::new()))
}

// ---------------------------------------------------------------------------
// Sweep-wide registry, phase profile, and progress stream
// ---------------------------------------------------------------------------

/// The process-wide registry every simulated point's machine registry is
/// absorbed into, plus the ids of the runner's own `memo.*` namespace
/// (cache-layer sweep counters, refreshed at snapshot time).
struct SweepRegistry {
    reg: Registry,
    mem_hits: CounterId,
    disk_hits: CounterId,
    shared_hits: CounterId,
    misses: CounterId,
    simulated: CounterId,
    mem_evictions: CounterId,
    disk_evictions: CounterId,
    flight_waits: CounterId,
    migrated_entries: CounterId,
    cache_corruptions: CounterId,
    retries: CounterId,
    quarantined_points: CounterId,
    mem_bytes: GaugeId,
    disk_bytes: GaugeId,
    mem_lookup_nanos: HistogramId,
    disk_lookup_nanos: HistogramId,
    shared_lookup_nanos: HistogramId,
    fill_nanos: HistogramId,
}

fn sweep_registry() -> &'static Mutex<SweepRegistry> {
    static REG: std::sync::OnceLock<Mutex<SweepRegistry>> = std::sync::OnceLock::new();
    REG.get_or_init(|| {
        let mut reg = Registry::new();
        Mutex::new(SweepRegistry {
            mem_hits: reg.counter("memo.mem_hits"),
            disk_hits: reg.counter("memo.disk_hits"),
            shared_hits: reg.counter("memo.shared_hits"),
            misses: reg.counter("memo.misses"),
            simulated: reg.counter("memo.simulated"),
            mem_evictions: reg.counter("memo.mem_evictions"),
            disk_evictions: reg.counter("memo.disk_evictions"),
            flight_waits: reg.counter("memo.flight_waits"),
            migrated_entries: reg.counter("memo.migrated_entries"),
            cache_corruptions: reg.counter("memo.cache_corruptions"),
            retries: reg.counter("memo.retries"),
            quarantined_points: reg.counter("memo.quarantined_points"),
            mem_bytes: reg.gauge("memo.mem_bytes"),
            disk_bytes: reg.gauge("memo.disk_bytes"),
            mem_lookup_nanos: reg.histogram("memo.mem_lookup_nanos"),
            disk_lookup_nanos: reg.histogram("memo.disk_lookup_nanos"),
            shared_lookup_nanos: reg.histogram("memo.shared_lookup_nanos"),
            fill_nanos: reg.histogram("memo.fill_nanos"),
            reg,
        })
    })
}

/// A deterministic snapshot of the sweep-wide counter registry: every
/// subsystem namespace summed over the points this process actually
/// simulated (memo hits contribute nothing — their machines never ran),
/// plus the live `memo.*` tier counters, byte gauges, and lookup/fill
/// latency histograms. This is the fragment `BENCH_sweep.json` embeds.
#[must_use]
pub fn sweep_registry_snapshot() -> Registry {
    let m = memo_stats();
    let log = recovery_log();
    let mut state = sweep_registry().lock().expect("sweep registry lock");
    let counters = [
        (state.mem_hits, m.mem_hits),
        (state.disk_hits, m.disk_hits),
        (state.shared_hits, m.shared_hits),
        (state.misses, m.misses),
        (state.simulated, m.simulated),
        (state.mem_evictions, m.mem_evictions),
        (state.disk_evictions, m.disk_evictions),
        (state.flight_waits, m.flight_waits),
        (state.migrated_entries, m.migrated_entries),
        (state.cache_corruptions, log.cache_corruptions),
        (state.retries, log.retries),
        (state.quarantined_points, log.quarantines),
    ];
    for (id, v) in counters {
        state.reg.set_counter(id, v);
    }
    let gauges = [(state.mem_bytes, m.mem_bytes), (state.disk_bytes, m.disk_bytes)];
    for (id, v) in gauges {
        state.reg.set(id, v);
    }
    state.reg.clone()
}

/// Folds one lookup's per-tier latencies into the sweep histograms.
fn note_lookup_latencies(mem: u64, disk: Option<u64>, shared: Option<u64>) {
    let mut state = sweep_registry().lock().expect("sweep registry lock");
    let (id_mem, id_disk, id_shared) =
        (state.mem_lookup_nanos, state.disk_lookup_nanos, state.shared_lookup_nanos);
    state.reg.observe(id_mem, mem);
    if let Some(n) = disk {
        state.reg.observe(id_disk, n);
    }
    if let Some(n) = shared {
        state.reg.observe(id_shared, n);
    }
}

/// Records one store-fill wall time into the sweep histograms.
fn note_fill_latency(nanos: u64) {
    let mut state = sweep_registry().lock().expect("sweep registry lock");
    let id = state.fill_nanos;
    state.reg.observe(id, nanos);
}

fn sweep_profiler() -> &'static Mutex<PhaseProfiler> {
    static PROF: std::sync::OnceLock<Mutex<PhaseProfiler>> = std::sync::OnceLock::new();
    PROF.get_or_init(|| Mutex::new(PhaseProfiler::new()))
}

/// The process-wide phase profile: machine pipeline regions summed over
/// every simulated point, plus the runner's own memo-cache I/O and
/// journal-write time.
#[must_use]
pub fn sweep_phase_profile() -> PhaseProfiler {
    *sweep_profiler().lock().expect("sweep profiler lock")
}

fn note_phase(phase: Phase, nanos: u64) {
    sweep_profiler().lock().expect("sweep profiler lock").add(phase, nanos);
}

/// Times one runner-side operation into the sweep phase profile.
fn timed<T>(phase: Phase, f: impl FnOnce() -> T) -> T {
    let t = Instant::now();
    let out = f();
    note_phase(phase, u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX));
    out
}

fn progress_slot() -> &'static Mutex<Option<Arc<ProgressSink>>> {
    static SINK: std::sync::OnceLock<Mutex<Option<Arc<ProgressSink>>>> = std::sync::OnceLock::new();
    SINK.get_or_init(|| Mutex::new(None))
}

/// Attaches (or with `None` detaches) the streaming progress sink every
/// subsequent run in this process reports lifecycle events to: one JSONL
/// line per queued/started/progress/retry/quarantined/completed
/// transition, flushed as it happens. Supervision recovery events share
/// the same stream.
pub fn set_progress_sink(sink: Option<Arc<ProgressSink>>) {
    *progress_slot().lock().expect("progress lock") = sink;
}

fn active_progress_sink() -> Option<Arc<ProgressSink>> {
    progress_slot().lock().expect("progress lock").clone()
}

fn emit_progress(ev: &ProgressEvent<'_>) {
    if let Some(sink) = active_progress_sink() {
        sink.emit(ev);
    }
}

// ---------------------------------------------------------------------------
// Supervision configuration
// ---------------------------------------------------------------------------

/// Watchdog epoch applied to supervised runs; `0` disables the watchdog.
/// Defaults to [`dcl1::DEFAULT_WATCHDOG_EPOCH`] — the probe only reads
/// gauges, so arming it never changes statistics.
static WATCHDOG_EPOCH: AtomicU64 = AtomicU64::new(dcl1::DEFAULT_WATCHDOG_EPOCH);

/// Per-point wall-clock deadline in seconds; `0` means none.
static DEADLINE_SECS: AtomicU64 = AtomicU64::new(0);

/// Retry backoff unit in milliseconds (attempt `n` sleeps `n × base`).
static BACKOFF_MS: AtomicU64 = AtomicU64::new(50);

/// Overrides the progress-watchdog epoch for supervised runs (`0`
/// disables the watchdog entirely).
pub fn set_watchdog_epoch(epoch_cycles: u64) {
    WATCHDOG_EPOCH.store(epoch_cycles, Ordering::Relaxed);
}

/// Sets the per-point wall-clock deadline, in whole seconds (`0` = none).
/// A point that exceeds it fails the attempt with `SimError::Deadline`.
pub fn set_point_deadline_secs(secs: u64) {
    DEADLINE_SECS.store(secs, Ordering::Relaxed);
}

/// Sets the retry backoff unit in milliseconds (`0` retries immediately —
/// what the chaos CI job uses to stay fast).
pub fn set_retry_backoff_ms(ms: u64) {
    BACKOFF_MS.store(ms, Ordering::Relaxed);
}

fn retry_policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 3,
        backoff: std::time::Duration::from_millis(BACKOFF_MS.load(Ordering::Relaxed)),
    }
}

/// Human-readable `APP/DESIGN` label of a request — the identity used by
/// quarantine reports, the journal, and chaos fault assignment.
pub fn point_label(req: &RunRequest) -> String {
    format!("{}/{}", req.app.name, req.design.name())
}

// ---------------------------------------------------------------------------
// Chaos (deterministic fault injection)
// ---------------------------------------------------------------------------

/// Watchdog epoch used for chaos-injected stalls: small enough that the
/// livelock is detected in milliseconds, large enough to be a real epoch.
const CHAOS_STALL_EPOCH: u64 = 1 << 14;

/// Cycle at which a chaos stall freezes the machine — early enough that
/// even the shortest smoke-scale point (~1.2k cycles) is still mid-kernel,
/// so every injected stall actually engages the watchdog.
const CHAOS_STALL_CYCLE: u64 = 512;

fn chaos_slot() -> &'static Mutex<Option<Chaos>> {
    static CHAOS: std::sync::OnceLock<Mutex<Option<Chaos>>> = std::sync::OnceLock::new();
    CHAOS.get_or_init(|| Mutex::new(None))
}

thread_local! {
    /// Per-thread chaos override — `dcl1d` scopes fault injection to one
    /// tenant by arming it only on the worker thread running that
    /// tenant's job, leaving every other tenant's runs fault-free.
    static THREAD_CHAOS: std::cell::Cell<Option<Chaos>> = const { std::cell::Cell::new(None) };
    /// Per-thread deadline override (per-job deadlines in `dcl1d`).
    static THREAD_DEADLINE: std::cell::Cell<Option<u64>> = const { std::cell::Cell::new(None) };
    /// Tier that served the last completed point on this thread.
    static LAST_SOURCE: std::cell::Cell<Option<&'static str>> = const { std::cell::Cell::new(None) };
}

/// Arms (or with `None` disarms) deterministic fault injection for every
/// subsequent supervised run in this process. See [`dcl1_resilience::Chaos`]
/// for the fault classes; the same seed faults the same points every run.
pub fn set_chaos(seed: Option<u64>) {
    *chaos_slot().lock().expect("chaos lock") = seed.map(Chaos::new);
}

/// Arms (or with `None` disarms) fault injection for runs on *this thread
/// only*, overriding the process-wide engine. `dcl1d` uses this to scope a
/// tenant's requested chaos seed to that tenant's jobs: a worker thread
/// arms the seed before the job and disarms it after, so concurrent jobs
/// from other tenants — even ones sharing the same memo key — never see
/// an injected fault.
pub fn set_thread_chaos(seed: Option<u64>) {
    THREAD_CHAOS.with(|c| c.set(seed.map(Chaos::new)));
}

/// Sets (or with `None` clears) a per-thread wall-clock deadline override
/// for subsequent runs on this thread, taking precedence over
/// [`set_point_deadline_secs`]. `dcl1d` maps per-job deadlines onto this.
pub fn set_thread_deadline_secs(secs: Option<u64>) {
    THREAD_DEADLINE.with(|d| d.set(secs));
}

/// The tier that served the most recent completed point on this thread
/// (`"simulated"`, `"memo"`, `"disk"`, or `"shared"`), clearing the slot.
/// Worker loops that attribute tier traffic per tenant (the `dcl1d`
/// scheduler) read this right after each job; it is thread-local, so
/// concurrent workers never see each other's attribution.
pub fn take_last_source() -> Option<&'static str> {
    LAST_SOURCE.with(std::cell::Cell::take)
}

fn note_source(source: &'static str) {
    LAST_SOURCE.with(|s| s.set(Some(source)));
}

/// Serializes tests that mutate process-global supervision state (chaos,
/// backoff, journal) against each other — without it, a concurrently
/// running sweep test could absorb another test's injected faults.
#[cfg(test)]
pub(crate) fn test_env_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The currently armed chaos engine, if any: the thread-scoped override
/// first (see [`set_thread_chaos`]), then the process-wide engine.
pub fn active_chaos() -> Option<Chaos> {
    if let Some(c) = THREAD_CHAOS.with(std::cell::Cell::get) {
        return Some(c);
    }
    *chaos_slot().lock().expect("chaos lock")
}

/// Damages the on-disk cache entries for `key` the way `chaos` dictates
/// for `point` — called right after a store so the corruption-recovery
/// path (checksum reject → quarantine → recompute/re-store) runs
/// in-sweep. Aimed at the v3 fan-out layout: the entry lives in its
/// two-hex-digit bucket under the local tier, and, when a shared tier is
/// configured, the write-back copy there is damaged too, so the shared
/// tier's independent checksum rejection is exercised alongside the local
/// one.
fn chaos_corrupt_disk_entry(chaos: &Chaos, point: &str, key: u128) {
    let targets = [store().disk_entry_path(key), store().shared_entry_path(key)];
    for path in targets.into_iter().flatten() {
        let Ok(mut bytes) = std::fs::read(&path) else { continue };
        chaos.corrupt(point, &mut bytes);
        let _ = std::fs::write(&path, bytes);
    }
}

// ---------------------------------------------------------------------------
// Recovery telemetry
// ---------------------------------------------------------------------------

fn recovery() -> &'static Mutex<RecoveryLog> {
    static RECOVERY: std::sync::OnceLock<Mutex<RecoveryLog>> = std::sync::OnceLock::new();
    RECOVERY.get_or_init(|| Mutex::new(RecoveryLog::new()))
}

/// A snapshot of this process's recovery ledger: retries, quarantines,
/// cache corruptions, watchdog firings, journal resumes. All zeros unless
/// something actually went wrong (chaos off on a healthy sweep keeps it
/// clean — that's what the no-op test asserts).
pub fn recovery_log() -> RecoveryLog {
    recovery().lock().expect("recovery lock").clone()
}

fn record_supervision_event(point: &str, event: &SupervisionEvent) {
    let mut log = recovery().lock().expect("recovery lock");
    match event {
        SupervisionEvent::Retrying { attempt, error, .. } => {
            log.retries += 1;
            match error {
                SimError::Livelock { .. } => log.livelocks += 1,
                SimError::Deadline { .. } => log.deadlines += 1,
                _ => {}
            }
            log.note(format!("retry {point} after attempt {attempt}: [{}] {error}", error.class()));
            drop(log);
            let detail = format!("[{}] {error}", error.class());
            let ev =
                ProgressEvent::new(ProgressStage::Retry, point).attempt(*attempt).detail(&detail);
            emit_progress(&ev);
        }
        SupervisionEvent::Quarantined(rec) => {
            log.quarantines += 1;
            if rec.class == "livelock" {
                log.livelocks += 1;
            } else if rec.class == "deadline" {
                log.deadlines += 1;
            }
            log.note(rec.to_string());
            drop(log);
            let detail = rec.to_string();
            let ev = ProgressEvent::new(ProgressStage::Quarantined, point).detail(&detail);
            emit_progress(&ev);
        }
    }
}

fn record_cache_corruption(point: &str, path: &str, reason: &str) {
    let mut log = recovery().lock().expect("recovery lock");
    log.cache_corruptions += 1;
    log.note(format!("cache entry for {point} quarantined ({reason}): {path}"));
}

// ---------------------------------------------------------------------------
// Checkpoint journal
// ---------------------------------------------------------------------------

struct JournalState {
    writer: Option<journal::JournalWriter>,
    /// Keys already appended this process, so shared points (every
    /// figure's baselines) produce one line each, not one per sweep.
    written: BTreeSet<u128>,
}

fn journal_state() -> &'static Mutex<JournalState> {
    static JOURNAL: std::sync::OnceLock<Mutex<JournalState>> = std::sync::OnceLock::new();
    JOURNAL.get_or_init(|| Mutex::new(JournalState { writer: None, written: BTreeSet::new() }))
}

/// Opens (appending) the checkpoint journal at `path`; every point
/// completed by a supervised sweep from now on is recorded there, one
/// flushed JSONL line per point, so a killed process loses at most the
/// line being written.
///
/// # Errors
///
/// Returns [`SimError::Io`] when the journal file cannot be opened.
pub fn set_journal(path: &Path) -> Result<(), SimError> {
    let writer = journal::JournalWriter::open(path).map_err(|e| SimError::Io {
        context: format!("opening journal {}", path.display()),
        message: e.to_string(),
    })?;
    let mut state = journal_state().lock().expect("journal lock");
    state.writer = Some(writer);
    Ok(())
}

/// Stops journaling (the already-written file is left intact).
pub fn clear_journal() {
    journal_state().lock().expect("journal lock").writer = None;
}

/// Preloads the in-process memo from an existing checkpoint journal:
/// every intact line becomes a memo hit, so a re-run of the same sweep
/// resimulates only the points the killed run never finished. Torn or
/// corrupt lines are skipped, not fatal. Returns `(restored, skipped)`.
pub fn resume_from_journal(path: &Path) -> (usize, usize) {
    let (entries, mut skipped) = journal::read_entries(path);
    let mut restored = 0usize;
    for e in entries {
        match deserialize_stats(&e.payload) {
            Some(stats) => {
                // Mem-tier only: a resumed point must not rewrite (or
                // re-publish to a shared tier) entries this process never
                // computed.
                store().insert_mem_only(e.key, &stats);
                journal_state().lock().expect("journal lock").written.insert(e.key);
                restored += 1;
            }
            None => skipped += 1,
        }
    }
    if restored > 0 || skipped > 0 {
        let mut log = recovery().lock().expect("recovery lock");
        log.resumed_points += restored as u64;
        log.note(format!(
            "resumed {restored} point(s) from {} ({skipped} line(s) skipped)",
            path.display()
        ));
    }
    (restored, skipped)
}

fn journal_append(key: u128, point: &str, stats: &RunStats) {
    let mut state = journal_state().lock().expect("journal lock");
    if state.writer.is_none() || state.written.contains(&key) {
        return;
    }
    let payload = serialize_stats(stats);
    let result = state
        .writer
        .as_mut()
        .map(|w| w.append(key, point, &payload))
        .unwrap_or(Ok(()));
    state.written.insert(key);
    drop(state);
    if let Err(e) = result {
        // A failing journal degrades resumability, never the sweep.
        recovery()
            .lock()
            .expect("recovery lock")
            .note(format!("journal append failed for {point}: {e}"));
    }
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

/// Runs one simulation point at the given scale, memoized in-process and
/// on disk (see the module docs). `attempt` is the 0-based retry index —
/// chaos keys its per-attempt faults on it; unsupervised callers pass 0.
///
/// # Errors
///
/// Returns [`SimError::Config`] when the design fails to resolve, and
/// [`SimError::Livelock`] / [`SimError::Deadline`] when the armed watchdog
/// aborts the run. Cache corruption never surfaces here: a corrupt entry
/// is quarantined, recorded in the [`recovery_log`], and the point is
/// recomputed.
pub fn run_app_result(req: &RunRequest, scale: Scale, attempt: u32) -> Result<RunStats, SimError> {
    let point = point_label(req);
    let chaos = active_chaos();
    if let Some(c) = &chaos {
        if c.should_panic(&point, attempt) {
            panic!("chaos: injected worker panic at {point} (attempt {attempt})");
        }
    }
    let checked = check_mode();
    let key = memo_key(req, scale);
    // Checked mode bypasses the memo in both directions: the point of
    // `--check` is to actually execute the machine under its invariant
    // harness, and a checked run must not be served from (or poison) the
    // cache shared with unchecked runs — even though its stats are
    // required to be byte-identical.
    //
    // Everyone else loops lookup → claim: a tier hit (corruption degrades
    // to a miss in that tier) returns immediately; otherwise the thread
    // either becomes the single-flight leader for the key and falls
    // through to simulate, or waits for the current leader and re-checks
    // the tiers — a leader that died never strands its waiters, they just
    // elect a successor.
    let mut flight_guard = None;
    if !checked {
        loop {
            if let Some(stats) = store_lookup(&point, key) {
                return Ok(stats);
            }
            match store().begin_flight(key) {
                Flight::Leader(guard) => {
                    // Leadership re-check: a prior leader may have filled
                    // the tiers between our miss and our claim, and the
                    // exactly-once contract demands we serve that hit
                    // rather than resimulate.
                    if let Some(stats) = store_lookup(&point, key) {
                        return Ok(stats);
                    }
                    flight_guard = Some(guard);
                    break;
                }
                Flight::Waited => {}
            }
        }
    }
    let (num, den) = scale.ratio();
    let app = req.app.scaled(num, den);
    // Warm the caches over the first third of the kernel, then measure —
    // standard simulation methodology; keeps short scaled runs from being
    // dominated by cold misses.
    let mut opts = req.opts;
    if opts.warmup_instructions == 0 {
        opts.warmup_instructions = app.total_instructions() / 3;
    }
    let start = Instant::now();
    let mut sys = GpuSystem::build(&req.cfg, &req.design, &app, opts)
        .map_err(|e| SimError::Config(format!("{}: {e}", req.design.name())))?;
    sys.set_shards(effective_shards());
    // Registry and profiler are pull-only diagnostics: statistics are
    // byte-identical with them on (the determinism suite pins this), so
    // every supervised run carries them.
    sys.enable_registry();
    sys.enable_profiler();
    if let Some(sink) = active_progress_sink() {
        let label = point.clone();
        let total = app.total_instructions().max(1);
        let hook_start = Instant::now();
        sys.set_progress_hook(ProgressHook::new(move |cycle, retired| {
            let secs = hook_start.elapsed().as_secs_f64();
            let khz = if secs > 0.0 { cycle as f64 / secs / 1e3 } else { 0.0 };
            let ev = ProgressEvent::new(ProgressStage::Progress, &label)
                .attempt(attempt)
                .pct((100 * retired / total).min(100))
                .cycles(cycle)
                .khz(khz);
            sink.emit(&ev);
        }));
    }
    if checked {
        sys.enable_check();
    }
    let epoch = WATCHDOG_EPOCH.load(Ordering::Relaxed);
    if epoch > 0 {
        sys.set_watchdog(epoch);
    }
    let deadline = THREAD_DEADLINE
        .with(std::cell::Cell::get)
        .unwrap_or_else(|| DEADLINE_SECS.load(Ordering::Relaxed));
    if deadline > 0 {
        sys.set_deadline_secs(deadline);
    }
    if let Some(c) = &chaos {
        if c.should_stall(&point, attempt) {
            // Freeze progress mid-run and tighten the epoch so the
            // watchdog converts the hang into a livelock within
            // milliseconds instead of the default ~1M cycles.
            sys.inject_stall_from(CHAOS_STALL_CYCLE);
            sys.set_watchdog(CHAOS_STALL_EPOCH);
        }
    }
    let stats = sys.run_result()?;
    let wall = start.elapsed();
    note_shard_report(&sys.shard_report());
    let profile = sys.take_profiler().unwrap_or_default();
    if let Some(mm) = sys.take_metrics() {
        sweep_registry().lock().expect("sweep registry lock").reg.absorb(mm.registry());
    }
    sweep_profiler().lock().expect("sweep profiler lock").absorb(&profile);

    SIMULATED.fetch_add(1, Ordering::Relaxed);
    SIM_CYCLES.fetch_add(stats.cycles, Ordering::Relaxed);
    WALL_NANOS.fetch_add(u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX), Ordering::Relaxed);
    let timing = PointTiming {
        app: req.app.name,
        design: stats.design.clone(),
        sim_cycles: stats.cycles,
        wall_seconds: wall.as_secs_f64(),
        profile,
    };
    note_source("simulated");
    let done = ProgressEvent::new(ProgressStage::Completed, &point)
        .attempt(attempt)
        .source("simulated")
        .cycles(stats.cycles)
        .khz(timing.khz());
    emit_progress(&done);
    timings().lock().expect("timings lock").push(timing);

    if !checked {
        let t_fill = Instant::now();
        let fill = store().insert(key, &stats);
        let fill_nanos = u64::try_from(t_fill.elapsed().as_nanos()).unwrap_or(u64::MAX);
        note_fill_latency(fill_nanos);
        if let Some(n) = fill.shared_nanos {
            note_phase(Phase::SharedIo, n);
            note_phase(Phase::CacheIo, fill_nanos.saturating_sub(n));
        } else {
            note_phase(Phase::CacheIo, fill_nanos);
        }
        if let Some(c) = &chaos {
            if c.should_corrupt(&point) {
                // Damage the entry we just wrote, then read it back: the
                // checksum rejects it, the file is quarantined, and the
                // clean result is re-persisted — the full corruption
                // recovery path, exercised in-sweep.
                chaos_corrupt_disk_entry(c, &point, key);
                let mut corruptions = Vec::new();
                if let DiskReload::Corrupt(c) = store().reload_disk(key, &mut corruptions) {
                    record_cache_corruption(&point, &c.path, &c.reason);
                    store().store_disk(key, &stats);
                }
            }
        }
    }
    // Release single-flight leadership only after the tiers hold the
    // result, so a woken waiter's re-lookup always hits.
    drop(flight_guard);
    Ok(stats)
}

/// One pass through the store tiers for `point`/`key`: records
/// corruption reports, latency histograms, and phase attribution, and
/// emits the completion progress event on a hit. The mem-tier hit path
/// allocates only the returned `RunStats` clone.
fn store_lookup(point: &str, key: u128) -> Option<RunStats> {
    let mut corruptions: Vec<Corruption> = Vec::new();
    let lookup = store().lookup(key, &mut corruptions);
    for c in &corruptions {
        // Already quarantined by the store; surface it in the recovery
        // ledger — corruption degrades to a miss, never an error.
        record_cache_corruption(point, &c.path, &c.reason);
    }
    note_lookup_latencies(lookup.mem_nanos, lookup.disk_nanos, lookup.shared_nanos);
    if let Some(n) = lookup.disk_nanos {
        note_phase(Phase::CacheIo, n);
    }
    if let Some(n) = lookup.shared_nanos {
        note_phase(Phase::SharedIo, n);
    }
    let (stats, tier) = lookup.hit?;
    note_source(tier.name());
    let done = ProgressEvent::new(ProgressStage::Completed, point)
        .source(tier.name())
        .cycles(stats.cycles);
    emit_progress(&done);
    Some((*stats).clone())
}

/// Runs one simulation point at the given scale, memoized in-process and
/// on disk (see the module docs).
///
/// # Panics
///
/// Panics if the design fails to resolve (an experiment-definition bug)
/// or an armed watchdog reports a hang — supervised sweeps use
/// [`run_app_result`] and recover instead.
pub fn run_app(req: &RunRequest, scale: Scale) -> RunStats {
    run_app_result(req, scale, 0).unwrap_or_else(|e| panic!("{e}"))
}

/// Whether checked-sim mode is on (see [`set_check_mode`]).
pub fn check_mode() -> bool {
    CHECK_MODE.load(Ordering::Relaxed)
}

/// Turns checked-sim mode on or off for every subsequent [`run_app`] in
/// this process. Checked runs attach the machine's conservation-invariant
/// harness ([`dcl1::GpuSystem::enable_check`]), panic on any violation,
/// and bypass both memo layers in both directions; their statistics are
/// byte-identical to unchecked runs.
pub fn set_check_mode(enabled: bool) {
    CHECK_MODE.store(enabled, Ordering::Relaxed);
}

static CHECK_MODE: AtomicBool = AtomicBool::new(false);

/// Runs one simulation point with observability sinks attached, returning
/// a structured error instead of panicking on a bad design or a hang.
///
/// Bypasses both memo layers in both directions: tracing and metrics are
/// side effects of actually simulating, so a cached result would produce
/// empty output files — and an observed run is never written back, keeping
/// the cache free of runs the observer may have slowed down.
///
/// # Errors
///
/// Returns [`SimError::Config`] when the design fails to resolve, and
/// watchdog errors when one is armed and fires.
pub fn run_app_observed_result(
    req: &RunRequest,
    scale: Scale,
    obs: dcl1::Observer,
) -> Result<RunStats, SimError> {
    let (num, den) = scale.ratio();
    let app = req.app.scaled(num, den);
    let mut opts = req.opts;
    if opts.warmup_instructions == 0 {
        opts.warmup_instructions = app.total_instructions() / 3;
    }
    let mut sys = GpuSystem::build(&req.cfg, &req.design, &app, opts)
        .map_err(|e| SimError::Config(format!("{}: {e}", req.design.name())))?;
    sys.set_shards(effective_shards());
    sys.attach_observer(obs);
    let epoch = WATCHDOG_EPOCH.load(Ordering::Relaxed);
    if epoch > 0 {
        sys.set_watchdog(epoch);
    }
    let out = sys.run_result();
    note_shard_report(&sys.shard_report());
    out
}

/// Runs one simulation point with observability sinks attached.
///
/// # Panics
///
/// Panics if the design fails to resolve (an experiment-definition bug).
pub fn run_app_observed(req: &RunRequest, scale: Scale, obs: dcl1::Observer) -> RunStats {
    run_app_observed_result(req, scale, obs).unwrap_or_else(|e| panic!("{e}"))
}

/// Renders completed points as one canonical, byte-stable document: each
/// `(label, stats)` pair sorted by label, serialized exactly as the disk
/// cache serializes stats (f64 as bit patterns). Two sweeps over the same
/// points produced identical statistics iff their dumps are byte-equal —
/// the artifact the resume/chaos CI jobs diff.
#[must_use]
pub fn canonical_stats_dump(points: &[(String, RunStats)]) -> String {
    let mut sorted: Vec<&(String, RunStats)> = points.iter().collect();
    sorted.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out = String::new();
    for (label, stats) in sorted {
        out.push_str("=== ");
        out.push_str(label);
        out.push('\n');
        out.push_str(&serialize_stats(stats));
    }
    out
}

/// The FNV-1a digest of [`canonical_stats_dump`], as fixed-width hex —
/// what `BENCH_sweep.json` records so two runs can be compared without
/// keeping both dumps.
#[must_use]
pub fn stats_digest(points: &[(String, RunStats)]) -> String {
    checksum::fnv64_hex(canonical_stats_dump(points).as_bytes())
}

/// The outcome of a supervised sweep: per-point results in input order
/// (`None` where the point was quarantined) plus the quarantine records.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// One slot per request, input order; `None` marks a quarantined point.
    pub results: Vec<Option<RunStats>>,
    /// Points the supervisor gave up on, in input order.
    pub quarantined: Vec<QuarantineRecord>,
}

impl SweepOutcome {
    /// The completed statistics, skipping quarantined slots.
    #[must_use]
    pub fn completed(&self) -> Vec<&RunStats> {
        self.results.iter().flatten().collect()
    }
}

/// Shared per-point supervision wiring: started event, retry/quarantine
/// via [`supervise`], recovery-log accounting, and the checkpoint-journal
/// append on success.
fn supervise_point(
    req: &RunRequest,
    scale: Scale,
    policy: &RetryPolicy,
) -> Result<RunStats, QuarantineRecord> {
    let point = point_label(req);
    emit_progress(&ProgressEvent::new(ProgressStage::Started, &point));
    let outcome = supervise(
        &point,
        policy,
        |attempt| run_app_result(req, scale, attempt),
        |event| record_supervision_event(&point, event),
    );
    if let Ok(stats) = &outcome {
        timed(Phase::JournalWrite, || {
            journal_append(memo_key(req, scale), &point, stats);
        });
    }
    outcome
}

/// Runs one point under full supervision on the *current* thread. The
/// `dcl1d` scheduler calls this from its own worker pool so the
/// thread-scoped chaos and deadline overrides ([`set_thread_chaos`],
/// [`set_thread_deadline_secs`]) armed for the owning tenant apply to the
/// run — [`run_apps_supervised`] would move the work onto fresh threads
/// and out of the tenant's fault scope.
pub fn run_point_supervised(
    req: &RunRequest,
    scale: Scale,
) -> Result<RunStats, QuarantineRecord> {
    supervise_point(req, scale, &retry_policy())
}

/// Runs many simulation points across `workers` threads under full
/// supervision: each point executes behind panic containment, transient
/// failures (panics, watchdog livelocks/deadlines, I/O) are retried with
/// deterministic backoff, and a point that exhausts its budget is
/// quarantined — recorded in the outcome while the rest of the sweep
/// completes. Input order is preserved in the output.
pub fn run_apps_supervised(reqs: &[RunRequest], scale: Scale, workers: usize) -> SweepOutcome {
    let policy = retry_policy();
    let results: Vec<Mutex<Option<RunStats>>> = reqs.iter().map(|_| Mutex::new(None)).collect();
    let quarantined: Mutex<Vec<(usize, QuarantineRecord)>> = Mutex::new(Vec::new());
    let next = AtomicUsize::new(0);
    for req in reqs {
        emit_progress(&ProgressEvent::new(ProgressStage::Queued, &point_label(req)));
    }
    std::thread::scope(|s| {
        for _ in 0..workers.max(1).min(reqs.len().max(1)) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= reqs.len() {
                    break;
                }
                let req = &reqs[i];
                match supervise_point(req, scale, &policy) {
                    Ok(stats) => {
                        *results[i].lock().expect("result lock") = Some(stats);
                    }
                    Err(record) => {
                        quarantined.lock().expect("quarantine lock").push((i, record));
                    }
                }
            });
        }
    });
    let mut quarantined = quarantined.into_inner().expect("quarantine lock");
    quarantined.sort_by_key(|(i, _)| *i);
    SweepOutcome {
        results: results
            .into_iter()
            .map(|m| m.into_inner().expect("result lock"))
            .collect(),
        quarantined: quarantined.into_iter().map(|(_, r)| r).collect(),
    }
}

/// Runs many simulation points across `workers` threads, preserving input
/// order in the output.
///
/// # Panics
///
/// Panics — naming every quarantined point — if any point failed all its
/// supervised attempts. Unlike the pre-supervision runner the sweep runs
/// to completion first, so the panic reports every failing point, not
/// just the first.
pub fn run_apps_with_workers(reqs: &[RunRequest], scale: Scale, workers: usize) -> Vec<RunStats> {
    let outcome = run_apps_supervised(reqs, scale, workers);
    if !outcome.quarantined.is_empty() {
        let list: Vec<String> = outcome.quarantined.iter().map(ToString::to_string).collect();
        panic!(
            "sweep completed with {} unrecovered point(s):\n  {}",
            outcome.quarantined.len(),
            list.join("\n  ")
        );
    }
    outcome
        .results
        .into_iter()
        .map(|r| r.expect("no quarantines, so every slot is filled"))
        .collect()
}

static WORKER_OVERRIDE: AtomicUsize = AtomicUsize::new(0);
static SHARD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);
static SHARDS_MAX: AtomicU64 = AtomicU64::new(0);
static BARRIER_WAIT_NANOS: AtomicU64 = AtomicU64::new(0);

/// Execution domains requested for every machine built by [`run_app`]
/// when no override is set. Partitioning is determinism-neutral (stats
/// are byte-identical at any shard count) and cheap when the per-shard
/// worker pool stays off, so the sweeps default to a sharded machine and
/// let [`dcl1::GpuSystem`] decide whether threads are worth running.
pub const DEFAULT_SHARDS: usize = 4;

/// Pins the intra-point shard count used for every subsequent
/// [`run_app`] in this process; `0` restores [`DEFAULT_SHARDS`].
/// Orthogonal to [`set_worker_override`], which controls how many points
/// run concurrently: `--workers=N` on the bench binaries maps to `N`
/// shards inside each point and `available/N` concurrent points.
pub fn set_shard_override(shards: usize) {
    SHARD_OVERRIDE.store(shards, Ordering::Relaxed);
}

/// The shard count [`run_app`] will request from each machine (the
/// machine may clamp it — see [`dcl1::GpuSystem::set_shards`]).
pub fn effective_shards() -> usize {
    match SHARD_OVERRIDE.load(Ordering::Relaxed) {
        0 => DEFAULT_SHARDS,
        n => n,
    }
}

/// Aggregate intra-point sharding diagnostics for this process.
#[derive(Debug, Clone, Copy)]
pub struct ShardSweepStats {
    /// Largest effective shard count any simulated point ran with.
    pub shards: u64,
    /// Total wall nanoseconds coordinators spent waiting at epoch
    /// barriers, summed over simulated points.
    pub barrier_wait_nanos: u64,
}

/// Returns this process's accumulated sharding diagnostics.
pub fn shard_sweep_stats() -> ShardSweepStats {
    ShardSweepStats {
        shards: SHARDS_MAX.load(Ordering::Relaxed),
        barrier_wait_nanos: BARRIER_WAIT_NANOS.load(Ordering::Relaxed),
    }
}

/// Folds one machine's per-run shard report into the process totals.
fn note_shard_report(rep: &dcl1::ShardReport) {
    SHARDS_MAX.fetch_max(rep.shards as u64, Ordering::Relaxed);
    BARRIER_WAIT_NANOS.fetch_add(rep.barrier_wait_nanos, Ordering::Relaxed);
}

/// Pins the worker-thread count used by [`run_apps`] for every subsequent
/// call in this process; `0` restores the default (one thread per
/// available core). Benchmark drivers expose this as `--workers=N` so
/// throughput numbers taken on shared machines are reproducible.
pub fn set_worker_override(workers: usize) {
    WORKER_OVERRIDE.store(workers, Ordering::Relaxed);
}

/// The worker-thread count [`run_apps`] will use: the override if one is
/// set, otherwise the number of available cores.
pub fn effective_workers() -> usize {
    match WORKER_OVERRIDE.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
        n => n,
    }
}

/// Runs many simulation points across [`effective_workers`] threads,
/// preserving input order in the output.
///
/// # Panics
///
/// Re-panics with the failing request's app/design name if any worker
/// panics.
pub fn run_apps(reqs: &[RunRequest], scale: Scale) -> Vec<RunStats> {
    run_apps_with_workers(reqs, scale, effective_workers())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcl1_resilience::supervisor::panic_message;
    use dcl1_workloads::by_name;
    // Test-only: asserting on panics is the test's job; production code
    // routes panics through the resilience supervisor.
    use std::panic::{catch_unwind, AssertUnwindSafe}; // simcheck: allow(bare_catch_unwind): test asserts on panic propagation

    #[test]
    fn scale_ratios() {
        assert_eq!(Scale::Full.ratio(), (1, 1));
        assert_eq!(Scale::Smoke.ratio(), (1, 16));
    }

    #[test]
    fn parallel_runner_preserves_order() {
        let app = by_name("C-BLK").unwrap();
        let reqs = vec![
            RunRequest::new(app, Design::Baseline),
            RunRequest::new(app, Design::Private { nodes: 40 }),
        ];
        let out = run_apps(&reqs, Scale::Smoke);
        assert_eq!(out[0].design, "Baseline");
        assert_eq!(out[1].design, "Pr40");
        assert!(out.iter().all(|s| s.instructions > 0));
    }

    #[test]
    fn worker_panic_names_the_failing_point() {
        let app = by_name("C-BLK").unwrap();
        // An invalid node count fails Design::topology at build time.
        let bad = RunRequest::new(app, Design::Shared { nodes: 77 });
        let err = catch_unwind(AssertUnwindSafe(|| run_apps(&[bad], Scale::Smoke)))
            .expect_err("must propagate the worker panic");
        let msg = panic_message(err.as_ref());
        assert!(msg.contains("C-BLK"), "missing app name: {msg}");
        assert!(msg.contains("Sh77"), "missing design name: {msg}");
    }

    #[test]
    fn memo_key_distinguishes_points() {
        let app = by_name("C-BLK").unwrap();
        let a = RunRequest::new(app, Design::Baseline);
        let b = RunRequest::new(app, Design::Private { nodes: 40 });
        assert_ne!(memo_key(&a, Scale::Smoke), memo_key(&b, Scale::Smoke));
        assert_ne!(memo_key(&a, Scale::Smoke), memo_key(&a, Scale::Quarter));
        assert_eq!(memo_key(&a, Scale::Smoke), memo_key(&a, Scale::Smoke));
    }

    #[test]
    fn stats_roundtrip_is_bit_identical() {
        let s = RunStats {
            design: "Sh40+C10+Boost".to_string(),
            cycles: 123_456,
            instructions: 789,
            l1_accesses: 10,
            l1_hits: 7,
            l1_misses: 3,
            l1_replicated_misses: 1,
            mean_replicas: 1.234_567_890_123,
            max_port_utilization: 0.1 + 0.2, // deliberately non-representable
            mean_port_utilization: f64::MIN_POSITIVE,
            max_reply_link_utilization: 0.999,
            mean_load_rtt: 312.25,
            p50_load_rtt: 300,
            p95_load_rtt: 400,
            p99_load_rtt: 500,
            l2_accesses: 9,
            l2_misses: 4,
            dram_requests: 4,
            dram_row_hit_rate: 0.75,
            noc_flits: vec![1, 2, 3],
            per_node_accesses: vec![4, 5],
            stall_drained: 11,
            stall_alu_busy: 22,
            stall_fill_wait: 33,
            stall_mem_outbox: 44,
            stall_mem_l1_queue: 55,
            stall_mem_noc: 66,
            l1_mshr_stall_cycles: 77,
            l1_queue_stall_cycles: 88,
        };
        let back = deserialize_stats(&serialize_stats(&s)).expect("parse");
        assert_eq!(back, s);
        // Truncated files are rejected, not half-parsed.
        let text = serialize_stats(&s);
        let truncated = &text[..text.len() / 2];
        assert!(deserialize_stats(truncated).is_none());
    }

    #[test]
    fn stats_codec_round_trips_through_the_store_boundary() {
        // Entry framing (checksum header, quarantine, fan-out) lives in
        // `dcl1-store`; what this file owns is the codec the store calls
        // across that boundary.
        let stats = RunStats { design: "Baseline".to_string(), cycles: 42, ..RunStats::default() };
        let body = StatsCodec.encode(&stats);
        assert_eq!(StatsCodec.decode(&body).unwrap(), stats);
        // Truncation (a torn journal line, a short read) must not parse.
        assert!(StatsCodec.decode(&body[..body.len() / 2]).is_none());
    }

    #[test]
    fn canonical_dump_is_sorted_and_digest_is_stable() {
        let a = ("B-APP/Pr4".to_string(), RunStats { cycles: 2, ..RunStats::default() });
        let b = ("A-APP/Sh16".to_string(), RunStats { cycles: 1, ..RunStats::default() });
        let d1 = canonical_stats_dump(&[a.clone(), b.clone()]);
        let d2 = canonical_stats_dump(&[b.clone(), a.clone()]);
        assert_eq!(d1, d2, "dump must not depend on completion order");
        assert!(d1.find("A-APP").unwrap() < d1.find("B-APP").unwrap());
        assert_eq!(stats_digest(&[a.clone(), b.clone()]), stats_digest(&[b, a]));
    }

    #[test]
    fn chaos_transient_faults_recover_within_a_supervised_sweep() {
        // Pick a seed whose fault for this point is a transient panic, so
        // the supervised sweep must retry exactly once and then succeed
        // with byte-identical stats.
        let app = by_name("C-BLK").unwrap();
        let req = RunRequest::new(app, Design::Baseline);
        let point = point_label(&req);
        let seed = (0u64..10_000)
            .find(|s| {
                Chaos::new(*s).fault_for(&point) == Some(dcl1_resilience::Fault::TransientPanic)
            })
            .expect("some seed assigns a transient panic");

        let clean = run_apps(std::slice::from_ref(&req), Scale::Smoke);
        let _guard = test_env_lock();
        let before = recovery_log();
        set_chaos(Some(seed));
        set_retry_backoff_ms(0);
        // Bypass the memo (the clean run filled it) by dropping the key:
        // chaos panics fire before the memo lookup, so the retry still
        // exercises the full path; the memo then serves the clean result.
        let outcome = run_apps_supervised(&[req], Scale::Smoke, 1);
        set_chaos(None);
        set_retry_backoff_ms(50);

        assert!(outcome.quarantined.is_empty(), "{:?}", outcome.quarantined);
        assert_eq!(outcome.results[0].as_ref().unwrap(), &clean[0], "retry changed stats");
        let after = recovery_log();
        assert_eq!(after.retries, before.retries + 1, "exactly one retry");
        assert_eq!(after.quarantines, before.quarantines);
    }

    #[test]
    fn stale_schema_dirs_are_ignored() {
        // The active directory carries the current schema version…
        let base = PathBuf::from("/some/cache/base");
        assert_eq!(
            versioned_cache_dir(base.clone()),
            base.join(format!("v{CACHE_SCHEMA_VERSION}"))
        );
        assert_eq!(
            disk_cache_dir().file_name().unwrap().to_str().unwrap(),
            format!("v{CACHE_SCHEMA_VERSION}")
        );

        // …so an entry persisted under a stale sibling (a previous
        // schema's v1/) can never satisfy a lookup, even for the same key
        // — and the store's open pass deletes such siblings outright
        // (covered in `dcl1-store`'s migration test). Even a direct read
        // of a stale payload fails the field-count guard rather than
        // half-parsing.
        let pre_v2 = "cycles 1\ninstructions 2\ndesign Baseline\n";
        assert!(deserialize_stats(pre_v2).is_none());
    }
}
