//! Simulation execution: single runs and parallel sweeps.
//!
//! Results are memoized twice: in-process (a `HashMap` behind a mutex) and
//! on disk under `target/dcl1-cache/`, keyed by a structured hash of the
//! full (app, design, config, options, scale) point. Experiment modules
//! that share points (e.g. every figure's baseline runs) pay for them once
//! per machine, not once per process.

use dcl1::{Design, GpuConfig, GpuSystem, RunStats, SimOptions};
use dcl1_workloads::AppSpec;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// How much of each wavefront's trace to simulate (CTA grids stay full,
/// so machine occupancy is always realistic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Full-length traces.
    Full,
    /// Quarter-length traces — what EXPERIMENTS.md records.
    Quarter,
    /// Sixteenth-length traces — smoke tests.
    Smoke,
}

impl Scale {
    /// Numerator/denominator applied to the per-wavefront trace length.
    pub fn ratio(self) -> (u32, u32) {
        match self {
            Scale::Full => (1, 1),
            Scale::Quarter => (1, 4),
            Scale::Smoke => (1, 16),
        }
    }

    /// Reads the scale from the `DCL1_SCALE` environment variable
    /// (`full` / `quarter` / `smoke`), defaulting to `Quarter` so plain
    /// `cargo bench` finishes in minutes.
    pub fn from_env() -> Scale {
        match std::env::var("DCL1_SCALE").as_deref() {
            Ok("full") => Scale::Full,
            Ok("smoke") => Scale::Smoke,
            _ => Scale::Quarter,
        }
    }
}

/// One (application, design, options) point to simulate.
#[derive(Debug, Clone)]
pub struct RunRequest {
    /// Application to run.
    pub app: AppSpec,
    /// Hierarchy design.
    pub design: Design,
    /// Machine configuration.
    pub cfg: GpuConfig,
    /// Simulation options.
    pub opts: SimOptions,
}

impl RunRequest {
    /// A request with the default machine and options.
    pub fn new(app: AppSpec, design: Design) -> Self {
        RunRequest { app, design, cfg: GpuConfig::default(), opts: SimOptions::default() }
    }
}

// ---------------------------------------------------------------------------
// Memo key
// ---------------------------------------------------------------------------

/// Bump when the meaning of cached results changes (simulator semantics,
/// `RunStats` fields, trace generation, …) so stale on-disk entries are
/// never read back. The version is part of the cache directory name.
///
/// v2: `RunStats` grew the stall-attribution fields.
const CACHE_SCHEMA_VERSION: u32 = 2;

/// 128-bit FNV-1a, used instead of `DefaultHasher` because the on-disk
/// cache needs a hash that is stable across processes and Rust releases.
struct Fnv128 {
    state: u128,
}

impl Fnv128 {
    const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

    fn new() -> Self {
        Fnv128 { state: Self::OFFSET }
    }

    fn value(&self) -> u128 {
        self.state
    }
}

impl Hasher for Fnv128 {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(Self::PRIME);
        }
    }

    // Hasher contract: fold the 128-bit state to its low 64 bits.
    #[expect(clippy::cast_possible_truncation)]
    fn finish(&self) -> u64 {
        self.state as u64
    }
}

/// The full structured identity of a simulation point.
#[derive(Hash)]
struct MemoKey<'a> {
    schema: u32,
    app: &'a AppSpec,
    design: &'a Design,
    cfg: &'a GpuConfig,
    opts: &'a SimOptions,
    scale: Scale,
}

fn memo_key(req: &RunRequest, scale: Scale) -> u128 {
    let key = MemoKey {
        schema: CACHE_SCHEMA_VERSION,
        app: &req.app,
        design: &req.design,
        cfg: &req.cfg,
        opts: &req.opts,
        scale,
    };
    let mut h = Fnv128::new();
    key.hash(&mut h);
    h.value()
}

// ---------------------------------------------------------------------------
// On-disk cache
// ---------------------------------------------------------------------------

/// Appends the schema-version component to a cache base directory.
/// Entries from other schema versions live in sibling `v<N>` directories
/// and are never read back — stale results cannot leak across a bump.
fn versioned_cache_dir(base: PathBuf) -> PathBuf {
    base.join(format!("v{CACHE_SCHEMA_VERSION}"))
}

/// Directory holding persisted results: `$DCL1_CACHE_DIR` if set, else
/// `target/dcl1-cache/v<schema>/` in the workspace.
pub fn disk_cache_dir() -> PathBuf {
    let base = std::env::var_os("DCL1_CACHE_DIR").map(PathBuf::from).unwrap_or_else(|| {
        std::env::var_os("CARGO_TARGET_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| {
                PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../target"))
            })
            .join("dcl1-cache")
    });
    versioned_cache_dir(base)
}

/// Deletes every persisted result (all schema versions).
pub fn clear_disk_cache() {
    if let Some(parent) = disk_cache_dir().parent() {
        let _ = std::fs::remove_dir_all(parent);
    }
}

/// Serializes `f64` as its exact bit pattern so a disk round-trip is
/// bit-identical (decimal formatting would not be).
fn fmt_f64(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn parse_f64(s: &str) -> Option<f64> {
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

fn fmt_vec(v: &[u64]) -> String {
    v.iter().map(|x| x.to_string()).collect::<Vec<_>>().join(",")
}

fn parse_vec(s: &str) -> Option<Vec<u64>> {
    if s.is_empty() {
        return Some(Vec::new());
    }
    s.split(',').map(|x| x.parse().ok()).collect()
}

fn serialize_stats(s: &RunStats) -> String {
    let mut out = String::new();
    let mut kv = |k: &str, v: String| {
        out.push_str(k);
        out.push(' ');
        out.push_str(&v);
        out.push('\n');
    };
    kv("cycles", s.cycles.to_string());
    kv("instructions", s.instructions.to_string());
    kv("l1_accesses", s.l1_accesses.to_string());
    kv("l1_hits", s.l1_hits.to_string());
    kv("l1_misses", s.l1_misses.to_string());
    kv("l1_replicated_misses", s.l1_replicated_misses.to_string());
    kv("mean_replicas", fmt_f64(s.mean_replicas));
    kv("max_port_utilization", fmt_f64(s.max_port_utilization));
    kv("mean_port_utilization", fmt_f64(s.mean_port_utilization));
    kv("max_reply_link_utilization", fmt_f64(s.max_reply_link_utilization));
    kv("mean_load_rtt", fmt_f64(s.mean_load_rtt));
    kv("p50_load_rtt", s.p50_load_rtt.to_string());
    kv("p95_load_rtt", s.p95_load_rtt.to_string());
    kv("p99_load_rtt", s.p99_load_rtt.to_string());
    kv("l2_accesses", s.l2_accesses.to_string());
    kv("l2_misses", s.l2_misses.to_string());
    kv("dram_requests", s.dram_requests.to_string());
    kv("dram_row_hit_rate", fmt_f64(s.dram_row_hit_rate));
    kv("noc_flits", fmt_vec(&s.noc_flits));
    kv("per_node_accesses", fmt_vec(&s.per_node_accesses));
    kv("stall_drained", s.stall_drained.to_string());
    kv("stall_alu_busy", s.stall_alu_busy.to_string());
    kv("stall_fill_wait", s.stall_fill_wait.to_string());
    kv("stall_mem_outbox", s.stall_mem_outbox.to_string());
    kv("stall_mem_l1_queue", s.stall_mem_l1_queue.to_string());
    kv("stall_mem_noc", s.stall_mem_noc.to_string());
    kv("l1_mshr_stall_cycles", s.l1_mshr_stall_cycles.to_string());
    kv("l1_queue_stall_cycles", s.l1_queue_stall_cycles.to_string());
    // Last because the free-form design name is rest-of-line.
    kv("design", s.design.clone());
    out
}

fn deserialize_stats(text: &str) -> Option<RunStats> {
    let mut s = RunStats::default();
    let mut seen = 0usize;
    for line in text.lines() {
        let (k, v) = line.split_once(' ')?;
        match k {
            "cycles" => s.cycles = v.parse().ok()?,
            "instructions" => s.instructions = v.parse().ok()?,
            "l1_accesses" => s.l1_accesses = v.parse().ok()?,
            "l1_hits" => s.l1_hits = v.parse().ok()?,
            "l1_misses" => s.l1_misses = v.parse().ok()?,
            "l1_replicated_misses" => s.l1_replicated_misses = v.parse().ok()?,
            "mean_replicas" => s.mean_replicas = parse_f64(v)?,
            "max_port_utilization" => s.max_port_utilization = parse_f64(v)?,
            "mean_port_utilization" => s.mean_port_utilization = parse_f64(v)?,
            "max_reply_link_utilization" => s.max_reply_link_utilization = parse_f64(v)?,
            "mean_load_rtt" => s.mean_load_rtt = parse_f64(v)?,
            "p50_load_rtt" => s.p50_load_rtt = v.parse().ok()?,
            "p95_load_rtt" => s.p95_load_rtt = v.parse().ok()?,
            "p99_load_rtt" => s.p99_load_rtt = v.parse().ok()?,
            "l2_accesses" => s.l2_accesses = v.parse().ok()?,
            "l2_misses" => s.l2_misses = v.parse().ok()?,
            "dram_requests" => s.dram_requests = v.parse().ok()?,
            "dram_row_hit_rate" => s.dram_row_hit_rate = parse_f64(v)?,
            "noc_flits" => s.noc_flits = parse_vec(v)?,
            "per_node_accesses" => s.per_node_accesses = parse_vec(v)?,
            "stall_drained" => s.stall_drained = v.parse().ok()?,
            "stall_alu_busy" => s.stall_alu_busy = v.parse().ok()?,
            "stall_fill_wait" => s.stall_fill_wait = v.parse().ok()?,
            "stall_mem_outbox" => s.stall_mem_outbox = v.parse().ok()?,
            "stall_mem_l1_queue" => s.stall_mem_l1_queue = v.parse().ok()?,
            "stall_mem_noc" => s.stall_mem_noc = v.parse().ok()?,
            "l1_mshr_stall_cycles" => s.l1_mshr_stall_cycles = v.parse().ok()?,
            "l1_queue_stall_cycles" => s.l1_queue_stall_cycles = v.parse().ok()?,
            "design" => s.design = v.to_string(),
            _ => return None,
        }
        seen += 1;
    }
    // A truncated file (e.g. interrupted write) must not parse.
    if seen == 29 {
        Some(s)
    } else {
        None
    }
}

fn disk_load(key: u128) -> Option<RunStats> {
    let path = disk_cache_dir().join(format!("{key:032x}.stats"));
    let text = std::fs::read_to_string(path).ok()?;
    deserialize_stats(&text)
}

fn disk_store(key: u128, stats: &RunStats) {
    let dir = disk_cache_dir();
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    // Temp-file + rename so concurrent writers never expose a torn file.
    let tmp = dir.join(format!("{key:032x}.tmp.{}", std::process::id()));
    if std::fs::write(&tmp, serialize_stats(stats)).is_ok() {
        let _ = std::fs::rename(&tmp, dir.join(format!("{key:032x}.stats")));
    }
}

// ---------------------------------------------------------------------------
// Telemetry
// ---------------------------------------------------------------------------

/// Wall-time/throughput record for one actually-simulated point.
#[derive(Debug, Clone)]
pub struct PointTiming {
    /// Application name.
    pub app: &'static str,
    /// Design name.
    pub design: String,
    /// Core cycles the run simulated.
    pub sim_cycles: u64,
    /// Wall-clock seconds the simulation took.
    pub wall_seconds: f64,
}

impl PointTiming {
    /// Simulated kilo-cycles per wall second.
    pub fn khz(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            0.0
        } else {
            self.sim_cycles as f64 / self.wall_seconds / 1e3
        }
    }
}

/// Aggregate sweep-throughput counters for this process.
#[derive(Debug, Clone, Copy, Default)]
pub struct MemoStats {
    /// Points served from the in-process memo.
    pub memory_hits: u64,
    /// Points served from the on-disk cache.
    pub disk_hits: u64,
    /// Points actually simulated.
    pub simulated: u64,
    /// Core cycles across simulated points.
    pub sim_cycles: u64,
    /// Wall nanoseconds across simulated points.
    pub wall_nanos: u64,
}

impl MemoStats {
    /// Fraction of lookups served without simulating.
    pub fn hit_rate(&self) -> f64 {
        let total = self.memory_hits + self.disk_hits + self.simulated;
        if total == 0 {
            0.0
        } else {
            (self.memory_hits + self.disk_hits) as f64 / total as f64
        }
    }
}

static MEMORY_HITS: AtomicU64 = AtomicU64::new(0);
static DISK_HITS: AtomicU64 = AtomicU64::new(0);
static SIMULATED: AtomicU64 = AtomicU64::new(0);
static SIM_CYCLES: AtomicU64 = AtomicU64::new(0);
static WALL_NANOS: AtomicU64 = AtomicU64::new(0);

/// Returns this process's sweep-throughput counters.
pub fn memo_stats() -> MemoStats {
    MemoStats {
        memory_hits: MEMORY_HITS.load(Ordering::Relaxed),
        disk_hits: DISK_HITS.load(Ordering::Relaxed),
        simulated: SIMULATED.load(Ordering::Relaxed),
        sim_cycles: SIM_CYCLES.load(Ordering::Relaxed),
        wall_nanos: WALL_NANOS.load(Ordering::Relaxed),
    }
}

/// Per-point timing records for every point simulated by this process.
pub fn point_timings() -> Vec<PointTiming> {
    timings().lock().expect("timings lock").clone()
}

/// Builds the end-of-sweep throughput table the `experiments` binary
/// prints: total simulated cycles, wall time, aggregate simulation speed,
/// and how many points the memo layers absorbed.
pub fn throughput_summary() -> crate::Table {
    let m = memo_stats();
    let wall = m.wall_nanos as f64 / 1e9;
    let khz = if wall > 0.0 { m.sim_cycles as f64 / wall / 1e3 } else { 0.0 };
    let mut t = crate::Table::new("Sweep throughput", &["metric", "value"]);
    t.row("points simulated", vec![m.simulated.to_string()]);
    t.row("points from memo (RAM)", vec![m.memory_hits.to_string()]);
    t.row("points from memo (disk)", vec![m.disk_hits.to_string()]);
    t.row("memo hit rate", vec![format!("{:.1}%", 100.0 * m.hit_rate())]);
    t.row("sim-cycles", vec![m.sim_cycles.to_string()]);
    t.row("sim wall seconds", vec![format!("{wall:.2}")]);
    t.row("sim speed (KHz)", vec![format!("{khz:.0}")]);
    t
}

fn timings() -> &'static Mutex<Vec<PointTiming>> {
    static TIMINGS: std::sync::OnceLock<Mutex<Vec<PointTiming>>> = std::sync::OnceLock::new();
    TIMINGS.get_or_init(|| Mutex::new(Vec::new()))
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

/// Runs one simulation point at the given scale, memoized in-process and
/// on disk (see the module docs).
///
/// # Panics
///
/// Panics if the design fails to resolve (an experiment-definition bug).
pub fn run_app(req: &RunRequest, scale: Scale) -> RunStats {
    let checked = check_mode();
    let key = memo_key(req, scale);
    // Checked mode bypasses the memo in both directions: the point of
    // `--check` is to actually execute the machine under its invariant
    // harness, and a checked run must not be served from (or poison) the
    // cache shared with unchecked runs — even though its stats are
    // required to be byte-identical.
    if !checked {
        if let Some(hit) = cache().lock().expect("memo lock").get(&key) {
            MEMORY_HITS.fetch_add(1, Ordering::Relaxed);
            return hit.clone();
        }
        if let Some(hit) = disk_load(key) {
            DISK_HITS.fetch_add(1, Ordering::Relaxed);
            cache().lock().expect("memo lock").insert(key, hit.clone());
            return hit;
        }
    }
    let (num, den) = scale.ratio();
    let app = req.app.scaled(num, den);
    // Warm the caches over the first third of the kernel, then measure —
    // standard simulation methodology; keeps short scaled runs from being
    // dominated by cold misses.
    let mut opts = req.opts;
    if opts.warmup_instructions == 0 {
        opts.warmup_instructions = app.total_instructions() / 3;
    }
    let start = Instant::now();
    let mut sys = GpuSystem::build(&req.cfg, &req.design, &app, opts)
        .unwrap_or_else(|e| panic!("{}: {e}", req.design.name()));
    if checked {
        sys.enable_check();
    }
    let stats = sys.run();
    let wall = start.elapsed();

    SIMULATED.fetch_add(1, Ordering::Relaxed);
    SIM_CYCLES.fetch_add(stats.cycles, Ordering::Relaxed);
    WALL_NANOS.fetch_add(u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX), Ordering::Relaxed);
    timings().lock().expect("timings lock").push(PointTiming {
        app: req.app.name,
        design: stats.design.clone(),
        sim_cycles: stats.cycles,
        wall_seconds: wall.as_secs_f64(),
    });

    if !checked {
        disk_store(key, &stats);
        cache().lock().expect("memo lock").insert(key, stats.clone());
    }
    stats
}

/// Whether checked-sim mode is on (see [`set_check_mode`]).
pub fn check_mode() -> bool {
    CHECK_MODE.load(Ordering::Relaxed)
}

/// Turns checked-sim mode on or off for every subsequent [`run_app`] in
/// this process. Checked runs attach the machine's conservation-invariant
/// harness ([`dcl1::GpuSystem::enable_check`]), panic on any violation,
/// and bypass both memo layers in both directions; their statistics are
/// byte-identical to unchecked runs.
pub fn set_check_mode(enabled: bool) {
    CHECK_MODE.store(enabled, Ordering::Relaxed);
}

static CHECK_MODE: AtomicBool = AtomicBool::new(false);

/// Runs one simulation point with observability sinks attached.
///
/// Bypasses both memo layers in both directions: tracing and metrics are
/// side effects of actually simulating, so a cached result would produce
/// empty output files — and an observed run is never written back, keeping
/// the cache free of runs the observer may have slowed down.
///
/// # Panics
///
/// Panics if the design fails to resolve (an experiment-definition bug).
pub fn run_app_observed(req: &RunRequest, scale: Scale, obs: dcl1::Observer) -> RunStats {
    let (num, den) = scale.ratio();
    let app = req.app.scaled(num, den);
    let mut opts = req.opts;
    if opts.warmup_instructions == 0 {
        opts.warmup_instructions = app.total_instructions() / 3;
    }
    let mut sys = GpuSystem::build(&req.cfg, &req.design, &app, opts)
        .unwrap_or_else(|e| panic!("{}: {e}", req.design.name()));
    sys.attach_observer(obs);
    sys.run()
}

// BTreeMap rather than HashMap so any future iteration over memoized
// results (e.g. a cache dump) is key-ordered and byte-stable.
fn cache() -> &'static Mutex<BTreeMap<u128, RunStats>> {
    static CACHE: std::sync::OnceLock<Mutex<BTreeMap<u128, RunStats>>> = std::sync::OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs many simulation points across `workers` threads, preserving input
/// order in the output.
///
/// # Panics
///
/// Re-panics with the failing request's app/design name if any worker
/// panics.
pub fn run_apps_with_workers(reqs: &[RunRequest], scale: Scale, workers: usize) -> Vec<RunStats> {
    let results: Vec<Mutex<Option<RunStats>>> = reqs.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let failure: Mutex<Option<String>> = Mutex::new(None);
    std::thread::scope(|s| {
        for _ in 0..workers.max(1).min(reqs.len().max(1)) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= reqs.len() {
                    break;
                }
                let req = &reqs[i];
                match catch_unwind(AssertUnwindSafe(|| run_app(req, scale))) {
                    Ok(stats) => {
                        *results[i].lock().expect("result lock") = Some(stats);
                    }
                    Err(payload) => {
                        let msg = format!(
                            "simulation of app {} on design {} panicked: {}",
                            req.app.name,
                            req.design.name(),
                            panic_message(payload.as_ref())
                        );
                        failure.lock().expect("failure lock").get_or_insert(msg);
                        break;
                    }
                }
            });
        }
    });
    if let Some(msg) = failure.into_inner().expect("failure lock") {
        panic!("{msg}");
    }
    results
        .into_iter()
        .map(|m| m.into_inner().expect("result lock").expect("every request was processed"))
        .collect()
}

static WORKER_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Pins the worker-thread count used by [`run_apps`] for every subsequent
/// call in this process; `0` restores the default (one thread per
/// available core). Benchmark drivers expose this as `--workers=N` so
/// throughput numbers taken on shared machines are reproducible.
pub fn set_worker_override(workers: usize) {
    WORKER_OVERRIDE.store(workers, Ordering::Relaxed);
}

/// The worker-thread count [`run_apps`] will use: the override if one is
/// set, otherwise the number of available cores.
pub fn effective_workers() -> usize {
    match WORKER_OVERRIDE.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
        n => n,
    }
}

/// Runs many simulation points across [`effective_workers`] threads,
/// preserving input order in the output.
///
/// # Panics
///
/// Re-panics with the failing request's app/design name if any worker
/// panics.
pub fn run_apps(reqs: &[RunRequest], scale: Scale) -> Vec<RunStats> {
    run_apps_with_workers(reqs, scale, effective_workers())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcl1_workloads::by_name;

    #[test]
    fn scale_ratios() {
        assert_eq!(Scale::Full.ratio(), (1, 1));
        assert_eq!(Scale::Smoke.ratio(), (1, 16));
    }

    #[test]
    fn parallel_runner_preserves_order() {
        let app = by_name("C-BLK").unwrap();
        let reqs = vec![
            RunRequest::new(app, Design::Baseline),
            RunRequest::new(app, Design::Private { nodes: 40 }),
        ];
        let out = run_apps(&reqs, Scale::Smoke);
        assert_eq!(out[0].design, "Baseline");
        assert_eq!(out[1].design, "Pr40");
        assert!(out.iter().all(|s| s.instructions > 0));
    }

    #[test]
    fn worker_panic_names_the_failing_point() {
        let app = by_name("C-BLK").unwrap();
        // An invalid node count fails Design::topology at build time.
        let bad = RunRequest::new(app, Design::Shared { nodes: 77 });
        let err = catch_unwind(AssertUnwindSafe(|| run_apps(&[bad], Scale::Smoke)))
            .expect_err("must propagate the worker panic");
        let msg = panic_message(err.as_ref());
        assert!(msg.contains("C-BLK"), "missing app name: {msg}");
        assert!(msg.contains("Sh77"), "missing design name: {msg}");
    }

    #[test]
    fn memo_key_distinguishes_points() {
        let app = by_name("C-BLK").unwrap();
        let a = RunRequest::new(app, Design::Baseline);
        let b = RunRequest::new(app, Design::Private { nodes: 40 });
        assert_ne!(memo_key(&a, Scale::Smoke), memo_key(&b, Scale::Smoke));
        assert_ne!(memo_key(&a, Scale::Smoke), memo_key(&a, Scale::Quarter));
        assert_eq!(memo_key(&a, Scale::Smoke), memo_key(&a, Scale::Smoke));
    }

    #[test]
    fn stats_roundtrip_is_bit_identical() {
        let s = RunStats {
            design: "Sh40+C10+Boost".to_string(),
            cycles: 123_456,
            instructions: 789,
            l1_accesses: 10,
            l1_hits: 7,
            l1_misses: 3,
            l1_replicated_misses: 1,
            mean_replicas: 1.234_567_890_123,
            max_port_utilization: 0.1 + 0.2, // deliberately non-representable
            mean_port_utilization: f64::MIN_POSITIVE,
            max_reply_link_utilization: 0.999,
            mean_load_rtt: 312.25,
            p50_load_rtt: 300,
            p95_load_rtt: 400,
            p99_load_rtt: 500,
            l2_accesses: 9,
            l2_misses: 4,
            dram_requests: 4,
            dram_row_hit_rate: 0.75,
            noc_flits: vec![1, 2, 3],
            per_node_accesses: vec![4, 5],
            stall_drained: 11,
            stall_alu_busy: 22,
            stall_fill_wait: 33,
            stall_mem_outbox: 44,
            stall_mem_l1_queue: 55,
            stall_mem_noc: 66,
            l1_mshr_stall_cycles: 77,
            l1_queue_stall_cycles: 88,
        };
        let back = deserialize_stats(&serialize_stats(&s)).expect("parse");
        assert_eq!(back, s);
        // Truncated files are rejected, not half-parsed.
        let text = serialize_stats(&s);
        let truncated = &text[..text.len() / 2];
        assert!(deserialize_stats(truncated).is_none());
    }

    #[test]
    fn stale_schema_dirs_are_ignored() {
        // The active directory carries the current schema version…
        let base = PathBuf::from("/some/cache/base");
        assert_eq!(
            versioned_cache_dir(base.clone()),
            base.join(format!("v{CACHE_SCHEMA_VERSION}"))
        );
        assert_eq!(disk_cache_dir().file_name().unwrap().to_str(), Some("v2"));

        // …so an entry persisted under a stale sibling (a previous
        // schema's v1/) can never satisfy a lookup, even for the same key.
        let scratch = std::env::temp_dir()
            .join(format!("dcl1-stale-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&scratch);
        let stale = scratch.join("v1");
        std::fs::create_dir_all(&stale).unwrap();
        let key = 0xDEAD_BEEFu128;
        let pre_v2 = "cycles 1\ninstructions 2\ndesign Baseline\n";
        std::fs::write(stale.join(format!("{key:032x}.stats")), pre_v2).unwrap();
        let lookup = versioned_cache_dir(scratch.clone()).join(format!("{key:032x}.stats"));
        assert!(!lookup.exists(), "stale v1 entry visible through the v2 path");
        // And even a direct read of the stale payload fails the field-count
        // guard rather than half-parsing.
        assert!(deserialize_stats(pre_v2).is_none());
        let _ = std::fs::remove_dir_all(&scratch);
    }
}
