//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation.
//!
//! Each `experiments::figNN` module exposes a `run(scale) -> Vec<Table>`
//! function that executes the required simulations and returns
//! paper-style tables; the `benches/` targets (built with
//! `harness = false`) print them. `scale` shrinks per-wavefront trace
//! length (grids stay full so occupancy is realistic); EXPERIMENTS.md
//! records a `Scale::Quarter` pass, and `Scale::Full` reproduces the
//! same shapes with longer traces.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod compare;
pub mod experiments;
pub mod grid;
pub mod obscli;
pub mod rescli;
pub mod runner;
pub mod table;

pub use obscli::ObsCli;
pub use rescli::ResCli;
pub use runner::{
    run_app, run_app_observed, run_app_result, run_apps, run_apps_supervised, RunRequest, Scale,
    SweepOutcome,
};
pub use table::Table;
