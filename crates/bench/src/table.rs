//! Plain-text table rendering for experiment output.

use std::fmt;

/// A paper-style results table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Table/figure title, e.g. `"Fig 4a: IPC normalized to baseline"`.
    pub title: String,
    /// Column headers; the first column is the row label.
    pub headers: Vec<String>,
    /// Rows: label + one cell per remaining header.
    pub rows: Vec<(String, Vec<String>)>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row of formatted values.
    pub fn row(&mut self, label: impl Into<String>, cells: Vec<String>) {
        self.rows.push((label.into(), cells));
    }

    /// Appends a row of `f64` cells rendered with 3 decimals.
    pub fn row_f64(&mut self, label: impl Into<String>, cells: &[f64]) {
        self.row(label, cells.iter().map(|v| format!("{v:.3}")).collect());
    }

    /// Appends a geometric-mean summary row, one cell per column of
    /// inputs. Columns whose inputs contained non-positive values are
    /// flagged with the clamp count — their aggregate is
    /// epsilon-dominated and must not be read as a real ratio.
    pub fn row_geomean<C: AsRef<[f64]>>(&mut self, label: impl Into<String>, cols: &[C]) {
        let cells = cols
            .iter()
            .map(|c| {
                let (g, clamped) = dcl1_common::stats::geomean_counting(c.as_ref());
                if clamped > 0 {
                    format!("{g:.3} [{clamped} clamped]")
                } else {
                    format!("{g:.3}")
                }
            })
            .collect();
        self.row(label, cells);
    }

    /// Looks up a cell by row label and column header (testing helper).
    pub fn cell(&self, row: &str, col: &str) -> Option<&str> {
        let ci = self.headers.iter().position(|h| h == col)?;
        if ci == 0 {
            return None;
        }
        self.rows
            .iter()
            .find(|(l, _)| l == row)
            .and_then(|(_, cells)| cells.get(ci - 1))
            .map(String::as_str)
    }

    /// Parses a cell as `f64` (testing helper).
    pub fn cell_f64(&self, row: &str, col: &str) -> Option<f64> {
        self.cell(row, col)?.parse().ok()
    }

    /// Renders the table as RFC-4180-style CSV (quoting cells that need
    /// it), for spreadsheet/plotting pipelines.
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(&self.headers.iter().map(|h| field(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for (label, cells) in &self.rows {
            let mut row = vec![field(label)];
            row.extend(cells.iter().map(|c| field(c)));
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "\n== {} ==", self.title)?;
        let ncols = self.headers.len();
        // Column widths.
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for (label, cells) in &self.rows {
            widths[0] = widths[0].max(label.len());
            for (i, c) in cells.iter().enumerate() {
                if i + 1 < ncols {
                    widths[i + 1] = widths[i + 1].max(c.len());
                }
            }
        }
        let line = |f: &mut fmt::Formatter<'_>, cells: &[&str]| -> fmt::Result {
            for (i, c) in cells.iter().enumerate() {
                if i == 0 {
                    write!(f, "{:<w$}", c, w = widths[0])?;
                } else {
                    write!(f, "  {:>w$}", c, w = widths[i])?;
                }
            }
            writeln!(f)
        };
        let hdr: Vec<&str> = self.headers.iter().map(String::as_str).collect();
        line(f, &hdr)?;
        writeln!(f, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)))?;
        for (label, cells) in &self.rows {
            let mut row: Vec<&str> = vec![label];
            row.extend(cells.iter().map(String::as_str));
            line(f, &row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_export_quotes_and_rounds_trip() {
        let mut t = Table::new("T", &["app", "note"]);
        t.row("plain", vec!["1.0".into()]);
        t.row("with,comma", vec!["say \"hi\"".into()]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "app,note");
        assert_eq!(lines[1], "plain,1.0");
        assert_eq!(lines[2], "\"with,comma\",\"say \"\"hi\"\"\"");
    }

    #[test]
    fn renders_and_reads_back() {
        let mut t = Table::new("Fig X", &["app", "ipc", "miss"]);
        t.row_f64("T-AlexNet", &[2.9, 0.05]);
        t.row_f64("C-BLK", &[1.0, 0.99]);
        assert_eq!(t.cell("T-AlexNet", "ipc"), Some("2.900"));
        assert_eq!(t.cell_f64("C-BLK", "miss"), Some(0.99));
        assert!(t.cell("nope", "ipc").is_none());
        assert!(t.cell("C-BLK", "app").is_none());
        let s = t.to_string();
        assert!(s.contains("Fig X"));
        assert!(s.contains("T-AlexNet"));
    }
}
