//! Shared supervision/recovery command-line handling for the bench
//! binaries: checkpoint journal, resume, chaos injection, watchdog and
//! deadline knobs.

use crate::runner;
use std::path::PathBuf;

/// Default checkpoint-journal path.
pub const DEFAULT_JOURNAL_PATH: &str = "BENCH_journal.jsonl";

/// Parsed supervision flags.
///
/// Recognized (and removed from the argument list by [`ResCli::parse`]):
///
/// * `--journal[=PATH]` — append each completed point to a checkpoint
///   journal (default `BENCH_journal.jsonl`);
/// * `--resume[=PATH]` — preload the journal before sweeping, so only
///   unfinished points are resimulated; implies `--journal` at the same
///   path;
/// * `--chaos=SEED` — deterministic fault injection (worker panics,
///   stalls, cache corruption; see `dcl1_resilience::Chaos`). Also drops
///   the retry backoff to zero so recovery does not slow the sweep;
/// * `--deadline=SECS` — per-point wall-clock budget; a point exceeding it
///   fails the attempt (and is retried, then quarantined);
/// * `--watchdog=CYCLES` — progress-watchdog epoch override (`0`
///   disables; default `dcl1::DEFAULT_WATCHDOG_EPOCH`);
/// * `--retry-backoff-ms=N` — retry backoff unit (attempt `n` sleeps
///   `n × N` ms; default 50).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ResCli {
    /// Journal path, when journaling was requested.
    pub journal: Option<PathBuf>,
    /// Whether `--resume` was given.
    pub resume: bool,
    /// Chaos seed, when fault injection was requested.
    pub chaos_seed: Option<u64>,
    /// Points restored from the journal by `--resume`.
    pub resumed_points: usize,
    /// Journal lines skipped as torn/corrupt during `--resume`.
    pub skipped_lines: usize,
}

impl ResCli {
    /// Extracts supervision flags from `args`, applies them to the runner
    /// (chaos, watchdog, deadline, journal, resume), and leaves every
    /// other argument in place.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on a malformed value (e.g. a
    /// non-numeric `--chaos`) or an unopenable journal.
    pub fn parse(args: &mut Vec<String>) -> ResCli {
        let mut cli = ResCli::default();
        args.retain(|arg| {
            let (flag, value) = match arg.split_once('=') {
                Some((f, v)) => (f, Some(v)),
                None => (arg.as_str(), None),
            };
            match flag {
                "--journal" => {
                    cli.journal = Some(PathBuf::from(value.unwrap_or(DEFAULT_JOURNAL_PATH)));
                }
                "--resume" => {
                    cli.resume = true;
                    if cli.journal.is_none() {
                        cli.journal = Some(PathBuf::from(value.unwrap_or(DEFAULT_JOURNAL_PATH)));
                    }
                }
                "--chaos" => {
                    cli.chaos_seed = Some(
                        value
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| panic!("--chaos needs =SEED, got {arg:?}")),
                    );
                }
                "--deadline" => {
                    let secs: u64 = value
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| panic!("--deadline needs =SECS, got {arg:?}"));
                    runner::set_point_deadline_secs(secs);
                }
                "--watchdog" => {
                    let epoch: u64 = value
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| panic!("--watchdog needs =CYCLES, got {arg:?}"));
                    runner::set_watchdog_epoch(epoch);
                }
                "--retry-backoff-ms" => {
                    let ms: u64 = value
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| panic!("--retry-backoff-ms needs =N, got {arg:?}"));
                    runner::set_retry_backoff_ms(ms);
                }
                _ => return true,
            }
            false
        });
        runner::set_chaos(cli.chaos_seed);
        if cli.chaos_seed.is_some() {
            // Chaos sweeps recover dozens of injected faults; sleeping
            // through linear backoff on each would dominate CI time
            // without making the proof any stronger.
            runner::set_retry_backoff_ms(0);
        }
        if let Some(path) = &cli.journal {
            if cli.resume {
                let (restored, skipped) = runner::resume_from_journal(path);
                cli.resumed_points = restored;
                cli.skipped_lines = skipped;
            }
            runner::set_journal(path)
                .unwrap_or_else(|e| panic!("cannot open journal {}: {e}", path.display()));
        }
        cli
    }

    /// One-line summary of what supervision was configured, for banners.
    #[must_use]
    pub fn banner(&self) -> String {
        let mut parts = Vec::new();
        if let Some(p) = &self.journal {
            parts.push(format!("journal={}", p.display()));
        }
        if self.resume {
            parts.push(format!(
                "resumed {} point(s), skipped {} line(s)",
                self.resumed_points, self.skipped_lines
            ));
        }
        if let Some(seed) = self.chaos_seed {
            parts.push(format!("chaos seed={seed}"));
        }
        if parts.is_empty() {
            "supervision: defaults".to_string()
        } else {
            format!("supervision: {}", parts.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_strips_only_supervision_flags() {
        let _guard = runner::test_env_lock();
        let mut args: Vec<String> = [
            "--only=C-BLK",
            "--chaos=42",
            "--deadline=120",
            "--watchdog=65536",
            "--retry-backoff-ms=0",
            "--keep-cache",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let cli = ResCli::parse(&mut args);
        assert_eq!(args, vec!["--only=C-BLK".to_string(), "--keep-cache".to_string()]);
        assert_eq!(cli.chaos_seed, Some(42));
        assert!(cli.journal.is_none());
        assert!(!cli.resume);
        assert!(cli.banner().contains("chaos seed=42"));
        // Leave process-wide knobs as other tests expect them.
        runner::set_chaos(None);
        runner::set_point_deadline_secs(0);
        runner::set_watchdog_epoch(dcl1::DEFAULT_WATCHDOG_EPOCH);
        runner::set_retry_backoff_ms(50);
    }

    #[test]
    fn resume_implies_journal_at_same_path() {
        let _guard = runner::test_env_lock();
        let dir = std::env::temp_dir().join(format!("dcl1-rescli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let jpath = dir.join("j.jsonl");
        let mut args = vec![format!("--resume={}", jpath.display())];
        let cli = ResCli::parse(&mut args);
        assert!(args.is_empty());
        assert!(cli.resume);
        assert_eq!(cli.journal.as_deref(), Some(jpath.as_path()));
        assert_eq!(cli.resumed_points, 0, "empty journal restores nothing");
        runner::clear_journal();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
