//! Shared sweep-grid construction.
//!
//! The `perf_sweep` CLI and the `dcl1d` daemon must agree byte-for-byte
//! on what "the smoke grid filtered by `--only`" means — the daemon's
//! isolation proof compares a tenant's digest against the CLI's
//! fault-free reference, so both sides build their point sets here.

use crate::runner::RunRequest;
use dcl1::{Design, GpuConfig, SimOptions};
use dcl1_workloads::all_apps;

/// The default four-design sweep: the paper's baseline, the private and
/// shared decoupled geometries at 40 nodes, and the flagship design.
#[must_use]
pub fn default_designs(cfg: &GpuConfig) -> Vec<Design> {
    vec![
        Design::Baseline,
        Design::Private { nodes: 40 },
        Design::Shared { nodes: 40 },
        Design::flagship(cfg),
    ]
}

/// Parses design names (per `Design::from_str`, e.g. `pr4`, `sh16`,
/// `sh16+c8+boost`); an empty list yields [`default_designs`].
pub fn parse_designs(names: &[String], cfg: &GpuConfig) -> Result<Vec<Design>, String> {
    if names.is_empty() {
        return Ok(default_designs(cfg));
    }
    names
        .iter()
        .map(|name| name.parse().map_err(|e| format!("bad design {name:?}: {e}")))
        .collect()
}

/// Builds the all-apps × `designs` grid, keeping only points whose
/// `"APP/DESIGN"` label contains at least one `only` substring (an empty
/// `only` keeps everything). Point order is the canonical sweep order:
/// apps outermost, designs innermost.
#[must_use]
pub fn build_grid(
    designs: &[Design],
    only: &[String],
    cfg: &GpuConfig,
    opts: SimOptions,
) -> Vec<RunRequest> {
    let mut reqs = Vec::new();
    for app in all_apps() {
        for &design in designs {
            let req = RunRequest { app, design, cfg: cfg.clone(), opts };
            let name = format!("{}/{}", req.app.name, req.design.name());
            if only.is_empty() || only.iter().any(|o| name.contains(o.as_str())) {
                reqs.push(req);
            }
        }
    }
    reqs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_grid_is_the_112_point_smoke_grid() {
        let cfg = GpuConfig::default();
        let reqs =
            build_grid(&default_designs(&cfg), &[], &cfg, SimOptions::default());
        assert_eq!(reqs.len(), all_apps().len() * 4);
    }

    #[test]
    fn only_filters_by_label_substring() {
        let cfg = GpuConfig::default();
        let only = vec!["C-BLK".to_string()];
        let reqs =
            build_grid(&default_designs(&cfg), &only, &cfg, SimOptions::default());
        assert_eq!(reqs.len(), 4);
        assert!(reqs.iter().all(|r| r.app.name == "C-BLK"));
    }

    #[test]
    fn empty_design_list_falls_back_to_defaults() {
        let cfg = GpuConfig::default();
        let parsed = parse_designs(&[], &cfg).expect("defaults parse");
        assert_eq!(parsed.len(), 4);
        assert!(parse_designs(&["no-such-design".to_string()], &cfg).is_err());
    }
}
