//! **Fig 19 + §VIII-A**: sensitivity studies — hierarchical crossbar
//! (CDXBar) comparison, L1 access-latency sweep, CTA scheduler, system
//! size, and boosted baselines.

use crate::runner::{run_apps, RunRequest, Scale};
use crate::table::Table;
use dcl1::design::BaselineBoost;
use dcl1::{Design, GpuConfig, SimOptions};
use dcl1_common::stats::geomean;
use dcl1_gpu::CtaPolicy;
use dcl1_workloads::{all_apps, replication_sensitive};

/// Runs the full sensitivity suite.
pub fn run(scale: Scale) -> Vec<Table> {
    vec![
        cdxbar(scale),
        latency_sweep(scale),
        cta_scheduler(scale),
        system_size(scale),
        boosted_baselines(scale),
    ]
}

fn geomean_ratio(stats: &[dcl1::RunStats], per: usize, j: usize, pick: &[bool]) -> f64 {
    let vals: Vec<f64> = (0..pick.len())
        .filter(|&i| pick[i])
        .map(|i| stats[i * per + 1 + j].ipc() / stats[i * per].ipc())
        .collect();
    geomean(&vals)
}

/// Fig 19a: CDXBar / +2xNoC1 / +2xNoC vs Sh40+C10+Boost.
fn cdxbar(scale: Scale) -> Table {
    let apps = all_apps();
    let designs = [
        Design::CdXbar { stage1_mult: 1, stage2_mult: 1 },
        Design::CdXbar { stage1_mult: 2, stage2_mult: 1 },
        Design::CdXbar { stage1_mult: 2, stage2_mult: 2 },
        Design::Clustered { nodes: 40, clusters: 10, boost: true },
    ];
    let mut reqs = Vec::new();
    for app in &apps {
        reqs.push(RunRequest::new(*app, Design::Baseline));
        for d in &designs {
            reqs.push(RunRequest::new(*app, *d));
        }
    }
    let stats = run_apps(&reqs, scale);
    let per = 1 + designs.len();
    let sens: Vec<bool> = apps.iter().map(|a| a.replication_sensitive).collect();
    let insens: Vec<bool> = apps.iter().map(|a| !a.replication_sensitive).collect();

    let mut t = Table::new(
        "Fig 19a: hierarchical crossbar (CDXBar) vs Sh40+C10+Boost (geomean IPC)",
        &["class", "CDXBar", "CDXBar+2xNoC1", "CDXBar+2xNoC", "Sh40+C10+Boost"],
    );
    t.row_f64(
        "repl-sensitive",
        &(0..4).map(|j| geomean_ratio(&stats, per, j, &sens)).collect::<Vec<_>>(),
    );
    t.row_f64(
        "repl-insensitive",
        &(0..4).map(|j| geomean_ratio(&stats, per, j, &insens)).collect::<Vec<_>>(),
    );
    t
}

/// Fig 19b: L1/DC-L1 access-latency sweep (0..64 cycles).
fn latency_sweep(scale: Scale) -> Table {
    let apps = replication_sensitive();
    let lats = [0u32, 16, 28, 48, 64];
    let flagship = Design::flagship(&GpuConfig::default());
    let mut reqs = Vec::new();
    for app in &apps {
        for lat in lats {
            let opts = SimOptions { l1_latency_override: Some(lat), ..SimOptions::default() };
            reqs.push(RunRequest { opts, ..RunRequest::new(*app, Design::Baseline) });
            reqs.push(RunRequest { opts, ..RunRequest::new(*app, flagship) });
        }
    }
    let stats = run_apps(&reqs, scale);
    let mut t = Table::new(
        "Fig 19b: Sh40+C10+Boost vs its own-latency baseline (geomean IPC, repl-sensitive)",
        &["l1_latency", "ipc_norm"],
    );
    for (k, lat) in lats.iter().enumerate() {
        let vals: Vec<f64> = (0..apps.len())
            .map(|i| {
                let base = &stats[(i * lats.len() + k) * 2];
                let boost = &stats[(i * lats.len() + k) * 2 + 1];
                boost.ipc() / base.ipc()
            })
            .collect();
        t.row_f64(format!("{lat}cyc"), &[geomean(&vals)]);
    }
    t
}

/// §VIII-A: distributed CTA scheduler.
fn cta_scheduler(scale: Scale) -> Table {
    let apps = replication_sensitive();
    let flagship = Design::flagship(&GpuConfig::default());
    let mut reqs = Vec::new();
    for app in &apps {
        for policy in [CtaPolicy::GreedyRoundRobin, CtaPolicy::DistributedBlocks] {
            let opts = SimOptions { cta_policy: policy, ..SimOptions::default() };
            reqs.push(RunRequest { opts, ..RunRequest::new(*app, Design::Baseline) });
            reqs.push(RunRequest { opts, ..RunRequest::new(*app, flagship) });
        }
    }
    let stats = run_apps(&reqs, scale);
    let mut t = Table::new(
        "SecVIII-A: CTA scheduler sensitivity (geomean IPC of Sh40+C10+Boost vs baseline)",
        &["scheduler", "ipc_norm"],
    );
    for (k, name) in ["greedy-round-robin", "distributed-blocks"].iter().enumerate() {
        let vals: Vec<f64> = (0..apps.len())
            .map(|i| {
                let base = &stats[(i * 2 + k) * 2];
                let boost = &stats[(i * 2 + k) * 2 + 1];
                boost.ipc() / base.ipc()
            })
            .collect();
        t.row_f64(*name, &[geomean(&vals)]);
    }
    t
}

/// §VIII-A: 120-core system (Sh60+C10+Boost).
fn system_size(scale: Scale) -> Table {
    let apps = replication_sensitive();
    let cfg = GpuConfig::scaled_120();
    let flagship = Design::flagship(&cfg);
    let mut reqs = Vec::new();
    for app in &apps {
        reqs.push(RunRequest { cfg: cfg.clone(), ..RunRequest::new(*app, Design::Baseline) });
        reqs.push(RunRequest { cfg: cfg.clone(), ..RunRequest::new(*app, flagship) });
    }
    let stats = run_apps(&reqs, scale);
    let vals: Vec<f64> =
        (0..apps.len()).map(|i| stats[2 * i + 1].ipc() / stats[2 * i].ipc()).collect();
    let mut t = Table::new(
        "SecVIII-A: 120-core scaling (Sh60+C10+Boost, geomean IPC, repl-sensitive)",
        &["system", "ipc_norm"],
    );
    t.row_f64("120 cores / 60 DC-L1 / 48 L2 / 24 MC", &[geomean(&vals)]);
    t
}

/// §VIII-A: boosted baselines.
fn boosted_baselines(scale: Scale) -> Table {
    let apps = replication_sensitive();
    let designs = [
        Design::BoostedBaseline(BaselineBoost::Cache2x),
        Design::BoostedBaseline(BaselineBoost::NocFreq2x),
        Design::BoostedBaseline(BaselineBoost::Flit4x),
        Design::Clustered { nodes: 40, clusters: 10, boost: true },
    ];
    let mut reqs = Vec::new();
    for app in &apps {
        reqs.push(RunRequest::new(*app, Design::Baseline));
        for d in &designs {
            reqs.push(RunRequest::new(*app, *d));
        }
    }
    let stats = run_apps(&reqs, scale);
    let per = 1 + designs.len();
    let mut t = Table::new(
        "SecVIII-A: boosted baselines (geomean IPC vs baseline, repl-sensitive)",
        &["config", "ipc_norm"],
    );
    for (j, d) in designs.iter().enumerate() {
        let vals: Vec<f64> = (0..apps.len())
            .map(|i| stats[i * per + 1 + j].ipc() / stats[i * per].ipc())
            .collect();
        t.row_f64(d.name(), &[geomean(&vals)]);
    }
    t
}
