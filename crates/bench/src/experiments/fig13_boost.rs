//! **Fig 13**: (a) the poor-performing applications under Sh40, Sh40+C10
//! and Sh40+C10+Boost; (b) maximum crossbar operating frequency vs radix
//! (analytic).

use crate::runner::{run_apps, RunRequest, Scale};
use crate::table::Table;
use dcl1::Design;
use dcl1_power::CrossbarModel;
use dcl1_workloads::poor_performing;

/// Runs the frequency-boost study.
pub fn run(scale: Scale) -> Vec<Table> {
    let apps = poor_performing();
    let designs = [
        Design::Shared { nodes: 40 },
        Design::Clustered { nodes: 40, clusters: 10, boost: false },
        Design::Clustered { nodes: 40, clusters: 10, boost: true },
    ];
    let mut reqs = Vec::new();
    for app in &apps {
        reqs.push(RunRequest::new(*app, Design::Baseline));
        for d in &designs {
            reqs.push(RunRequest::new(*app, *d));
        }
    }
    let stats = run_apps(&reqs, scale);
    let per = 1 + designs.len();

    let mut fig13a = Table::new(
        "Fig 13a: poor performers (IPC normalized to baseline)",
        &["app", "Sh40", "Sh40+C10", "Sh40+C10+Boost"],
    );
    let mut cols = vec![Vec::new(); designs.len()];
    for (i, app) in apps.iter().enumerate() {
        let base = &stats[i * per];
        let mut row = Vec::new();
        for j in 0..designs.len() {
            let r = stats[i * per + 1 + j].ipc() / base.ipc();
            row.push(r);
            cols[j].push(r);
        }
        fig13a.row_f64(app.name, &row);
    }
    fig13a.row_geomean("GEOMEAN", &cols);

    // Fig 13b: DSENT-like max frequency per crossbar radix.
    let model = CrossbarModel::default();
    let mut fig13b = Table::new(
        "Fig 13b: maximum crossbar operating frequency (DSENT-like model)",
        &["crossbar", "fmax_mhz", "can_run_2x_core(2800MHz)"],
    );
    for (i, o) in [(80usize, 32usize), (80, 40), (40, 32), (16, 8), (10, 8), (8, 4), (2, 1)] {
        let f = model.max_frequency_mhz(i, o);
        fig13b.row(
            format!("{i}x{o}"),
            vec![format!("{f:.0}"), if f >= 2800.0 { "yes".into() } else { "no".into() }],
        );
    }
    vec![fig13a, fig13b]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmax_model_tells_the_boost_story() {
        // Checked directly against the model (running the simulations in
        // a debug-build test would be too slow).
        let m = CrossbarModel::default();
        assert!(m.max_frequency_mhz(80, 32) < 2800.0);
        assert!(m.max_frequency_mhz(80, 40) < 2800.0);
        assert!(m.max_frequency_mhz(8, 4) >= 2800.0);
        assert!(m.max_frequency_mhz(2, 1) >= 2800.0);
    }
}
