//! **Fig 17**: DC-L1 data-port utilization S-curves for every proposed
//! design over all 28 applications.

use crate::experiments::proposed_designs;
use crate::runner::{run_apps, RunRequest, Scale};
use crate::table::Table;
use dcl1::Design;
use dcl1_workloads::all_apps;

/// Runs the port-utilization study.
pub fn run(scale: Scale) -> Vec<Table> {
    let apps = all_apps();
    let designs = proposed_designs();
    let mut reqs = Vec::new();
    for app in &apps {
        reqs.push(RunRequest::new(*app, Design::Baseline));
        for d in &designs {
            reqs.push(RunRequest::new(*app, *d));
        }
    }
    let stats = run_apps(&reqs, scale);
    let per = 1 + designs.len();

    // Ascending S-curves per design (including baseline).
    let mut curves: Vec<Vec<f64>> = Vec::new();
    for j in 0..per {
        let mut col: Vec<f64> =
            (0..apps.len()).map(|i| stats[i * per + j].max_port_utilization).collect();
        col.sort_by(f64::total_cmp);
        curves.push(col);
    }

    let mut t = Table::new(
        "Fig 17: max (DC-)L1 data-port utilization S-curves (sorted per design)",
        &["rank", "Baseline", "Pr40", "Sh40", "Sh40+C10", "Sh40+C10+Boost"],
    );
    for r in 0..apps.len() {
        let row: Vec<f64> = curves.iter().map(|c| c[r]).collect();
        t.row_f64(format!("{:02}", r + 1), &row);
    }
    vec![t]
}
