//! One module per paper table/figure. Each exposes
//! `run(scale) -> Vec<Table>`; the `benches/` targets print the results
//! and EXPERIMENTS.md records them against the paper's numbers.

pub mod ablations;
pub mod ext_scaling;
pub mod fig01_motivation;
pub mod fig02_utilization;
pub mod fig04_private;
pub mod fig06_noc_area;
pub mod fig08_shared;
pub mod fig09_shared_insensitive;
pub mod fig11_clustered;
pub mod fig12_clustered_noc;
pub mod fig13_boost;
pub mod fig14_final;
pub mod fig15_scurve;
pub mod fig16_missrate;
pub mod fig17_port_utilization;
pub mod fig18_energy_area;
pub mod fig19_sensitivity;
pub mod tab1_private_configs;

use dcl1::Design;

/// The four proposed designs of the paper's final evaluation (§VIII),
/// for the default 80-core machine.
pub fn proposed_designs() -> Vec<Design> {
    vec![
        Design::Private { nodes: 40 },
        Design::Shared { nodes: 40 },
        Design::Clustered { nodes: 40, clusters: 10, boost: false },
        Design::Clustered { nodes: 40, clusters: 10, boost: true },
    ]
}

/// The paper's cluster-count sweep (Fig 11): C1 = Sh40 … C40 = Pr40.
pub fn cluster_sweep() -> Vec<(String, Design)> {
    [1usize, 5, 10, 20, 40]
        .into_iter()
        .map(|z| {
            let d = match z {
                1 => Design::Shared { nodes: 40 },
                40 => Design::Private { nodes: 40 },
                z => Design::Clustered { nodes: 40, clusters: z, boost: false },
            };
            (format!("C{z}"), d)
        })
        .collect()
}
