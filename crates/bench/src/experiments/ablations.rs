//! Ablations of this reproduction's own design choices (DESIGN.md §3).
//!
//! Not a paper figure: these quantify how much each modelling decision
//! matters, on three contrasting workloads (streaming C-BLK, sharing
//! T-AlexNet, camped P-2MM) under the flagship `Sh40+C10+Boost` design.

use crate::runner::{run_apps, RunRequest, Scale};
use crate::table::Table;
use dcl1::{Design, GpuConfig};
use dcl1_workloads::by_name;

const APPS: [&str; 3] = ["C-BLK", "T-AlexNet", "P-2MM"];

/// Runs the ablation suite.
pub fn run(scale: Scale) -> Vec<Table> {
    let base_cfg = GpuConfig::default();
    let variants: Vec<(&str, GpuConfig)> = vec![
        ("default", base_cfg.clone()),
        // Router VCs → pure-FIFO inputs (head-of-line blocking).
        ("no-VCs (FIFO inputs)", GpuConfig { noc_vcs: 1, ..base_cfg.clone() }),
        // FR-FCFS starvation cap removed: pure row-hit-first.
        ("no DRAM age cap", {
            let mut c = base_cfg.clone();
            c.dram.t_starvation = u64::MAX;
            c
        }),
        // Quarter the MSHRs: outstanding-miss bound.
        ("16 MSHRs/core", GpuConfig { l1_mshr_entries: 16, ..base_cfg.clone() }),
        // Halve the DC-L1 node queues.
        ("2-entry node queues", GpuConfig { node_queue_entries: 2, ..base_cfg.clone() }),
        // Double the node queues.
        ("8-entry node queues", GpuConfig { node_queue_entries: 8, ..base_cfg.clone() }),
        // GPGPU-Sim's greedy-then-oldest wavefront scheduler.
        ("GTO issue policy", GpuConfig {
            issue_policy: dcl1_gpu::IssuePolicy::GreedyThenOldest,
            ..base_cfg.clone()
        }),
    ];

    let mut reqs = Vec::new();
    for app_name in APPS {
        let app = by_name(app_name).expect("catalog app");
        for (_, cfg) in &variants {
            reqs.push(RunRequest {
                cfg: cfg.clone(),
                ..RunRequest::new(app, Design::flagship(cfg))
            });
        }
    }
    let stats = run_apps(&reqs, scale);
    let per = variants.len();

    let mut t = Table::new(
        "Ablations: Sh40+C10+Boost IPC under modelling variants (normalized to default)",
        &["variant", "C-BLK", "T-AlexNet", "P-2MM"],
    );
    for (j, (name, _)) in variants.iter().enumerate() {
        let row: Vec<f64> = (0..APPS.len())
            .map(|i| stats[i * per + j].ipc() / stats[i * per].ipc())
            .collect();
        t.row_f64(*name, &row);
    }
    vec![t]
}
