//! **Fig 8**: the fully-shared Sh40 design on the replication-sensitive
//! applications — DC-L1 miss rate and IPC, normalized to baseline.

use crate::runner::{run_apps, RunRequest, Scale};
use crate::table::Table;
use dcl1::Design;
use dcl1_workloads::replication_sensitive;

/// Runs the shared DC-L1 study.
pub fn run(scale: Scale) -> Vec<Table> {
    let apps = replication_sensitive();
    let mut reqs = Vec::new();
    for app in &apps {
        reqs.push(RunRequest::new(*app, Design::Baseline));
        reqs.push(RunRequest::new(*app, Design::Shared { nodes: 40 }));
    }
    let stats = run_apps(&reqs, scale);

    let mut t = Table::new(
        "Fig 8: Sh40 on replication-sensitive apps (normalized to baseline)",
        &["app", "miss_norm", "ipc_norm"],
    );
    let mut misses = Vec::new();
    let mut ipcs = Vec::new();
    for (i, app) in apps.iter().enumerate() {
        let base = &stats[2 * i];
        let sh = &stats[2 * i + 1];
        let m = sh.l1_miss_rate() / base.l1_miss_rate().max(1e-9);
        let p = sh.ipc() / base.ipc();
        misses.push(m);
        ipcs.push(p);
        t.row_f64(app.name, &[m, p]);
    }
    t.row_geomean("GEOMEAN", &[&misses, &ipcs]);
    vec![t]
}
