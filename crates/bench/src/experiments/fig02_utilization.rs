//! **Fig 2**: baseline per-core L1 data-port utilization and reply-link
//! utilization, both as ascending S-curves over the 28 applications.

use crate::runner::{run_apps, RunRequest, Scale};
use crate::table::Table;
use dcl1::Design;
use dcl1_workloads::all_apps;

/// Runs the utilization study.
pub fn run(scale: Scale) -> Vec<Table> {
    let apps = all_apps();
    let reqs: Vec<RunRequest> =
        apps.iter().map(|a| RunRequest::new(*a, Design::Baseline)).collect();
    let stats = run_apps(&reqs, scale);

    let mut rows: Vec<(usize, f64)> =
        (0..apps.len()).map(|i| (i, stats[i].max_port_utilization)).collect();
    rows.sort_by(|a, b| a.1.total_cmp(&b.1));

    let mut t = Table::new(
        "Fig 2: max L1 data-port and L2->core reply-link utilization (ascending)",
        &["app", "port_util", "reply_link_util"],
    );
    for (i, _) in rows {
        t.row_f64(
            apps[i].name,
            &[stats[i].max_port_utilization, stats[i].max_reply_link_utilization],
        );
    }
    let max_port =
        stats.iter().map(|s| s.max_port_utilization).fold(0.0, f64::max);
    let max_link =
        stats.iter().map(|s| s.max_reply_link_utilization).fold(0.0, f64::max);
    t.row_f64("MAX", &[max_port, max_link]);
    vec![t]
}
