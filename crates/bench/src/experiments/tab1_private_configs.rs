//! **Table I**: NoC structure and peak L1 bandwidth of the private DC-L1
//! configurations (analytic; no simulation).

use crate::runner::Scale;
use crate::table::Table;
use dcl1::{Design, GpuConfig};

/// Emits Table I.
pub fn run(_scale: Scale) -> Vec<Table> {
    let cfg = GpuConfig::default();
    let designs = [
        Design::Baseline,
        Design::Private { nodes: 80 },
        Design::Private { nodes: 40 },
        Design::Private { nodes: 20 },
        Design::Private { nodes: 10 },
        Design::Clustered { nodes: 40, clusters: 10, boost: true },
    ];
    let base_bw = Design::Baseline
        .topology(&cfg)
        .expect("baseline resolves")
        .peak_l1_bandwidth(&cfg);

    let mut t = Table::new(
        "Table I: NoC configuration and peak L1 bandwidth per private DC-L1 design",
        &["config", "noc1", "noc2", "peak_bw_B_per_cyc", "bw_drop"],
    );
    for d in designs {
        let topo = d.topology(&cfg).expect("design resolves");
        let spec = topo.noc_spec(&cfg);
        let (noc1, noc2) = match spec.xbars.len() {
            1 => ("-".to_string(), fmt_xbar(&spec.xbars[0])),
            _ => (fmt_xbar(&spec.xbars[0]), fmt_xbar(&spec.xbars[1])),
        };
        let bw = topo.peak_l1_bandwidth(&cfg);
        t.row(
            topo.name.clone(),
            vec![noc1, noc2, format!("{bw:.0}"), format!("{:.1}x", base_bw / bw)],
        );
    }
    vec![t]
}

fn fmt_xbar(x: &dcl1_power::XbarSpec) -> String {
    if x.count == 1 {
        format!("{}x{} @{}MHz", x.inputs, x.outputs, x.freq_mhz)
    } else {
        format!("{}x {}x{} @{}MHz", x.count, x.inputs, x.outputs, x.freq_mhz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_drops_match_paper_table_i() {
        let t = &run(Scale::Smoke)[0];
        assert_eq!(t.cell("Pr80", "bw_drop"), Some("4.0x"));
        assert_eq!(t.cell("Pr40", "bw_drop"), Some("8.0x"));
        assert_eq!(t.cell("Pr20", "bw_drop"), Some("16.0x"));
        assert_eq!(t.cell("Pr10", "bw_drop"), Some("32.0x"));
        assert_eq!(t.cell("Sh40+C10+Boost", "bw_drop"), Some("4.0x"));
    }
}
