//! **Fig 18 + §VIII latency analysis**: NoC power breakdown, energy
//! efficiency, area breakdown, and round-trip-time statistics for
//! Sh40+C10+Boost vs the private baseline.

use crate::runner::{run_apps, RunRequest, Scale};
use crate::table::Table;
use dcl1::{Design, GpuConfig};
use dcl1_common::stats::mean;
use dcl1_power::{CrossbarModel, EnergyReport, SramModel};
use dcl1_workloads::all_apps;

/// Runs the energy/area/latency analysis.
pub fn run(scale: Scale) -> Vec<Table> {
    let cfg = GpuConfig::default();
    let apps = all_apps();
    let flagship = Design::flagship(&cfg);
    let mut reqs = Vec::new();
    for app in &apps {
        reqs.push(RunRequest::new(*app, Design::Baseline));
        reqs.push(RunRequest::new(*app, flagship));
    }
    let stats = run_apps(&reqs, scale);

    let model = CrossbarModel::default();
    let base_spec = Design::Baseline.topology(&cfg).expect("resolves").noc_spec(&cfg);
    let boost_spec = flagship.topology(&cfg).expect("resolves").noc_spec(&cfg);

    // Per-app power/energy, then mean ratios (paper reports averages).
    let mut static_ratio = Vec::new();
    let mut dynamic_ratio = Vec::new();
    let mut total_ratio = Vec::new();
    let mut energy_ratio = Vec::new();
    let mut perf_watt_ratio = Vec::new();
    let mut perf_energy_ratio = Vec::new();
    let mut rtt_ratio = Vec::new();
    for i in 0..apps.len() {
        let b = &stats[2 * i];
        let f = &stats[2 * i + 1];
        let rb = EnergyReport::new(
            &model,
            &base_spec,
            &b.noc_flits,
            b.seconds(cfg.core_mhz),
            b.instructions,
        );
        let rf = EnergyReport::new(
            &model,
            &boost_spec,
            &f.noc_flits,
            f.seconds(cfg.core_mhz),
            f.instructions,
        );
        static_ratio.push(rf.power.static_mw / rb.power.static_mw);
        dynamic_ratio.push(rf.power.dynamic_mw / rb.power.dynamic_mw.max(1e-9));
        total_ratio.push(rf.power.total_mw() / rb.power.total_mw());
        energy_ratio.push(rf.energy_mj / rb.energy_mj);
        perf_watt_ratio.push(rf.perf_per_watt() / rb.perf_per_watt());
        perf_energy_ratio.push(rf.perf_per_energy() / rb.perf_per_energy());
        rtt_ratio.push(f.mean_load_rtt / b.mean_load_rtt.max(1e-9));
    }

    let mut fig18a = Table::new(
        "Fig 18a: Sh40+C10+Boost NoC power & energy (mean ratio vs baseline)",
        &["metric", "ratio_vs_baseline"],
    );
    fig18a.row_f64("static_power", &[mean(&static_ratio)]);
    fig18a.row_f64("dynamic_power", &[mean(&dynamic_ratio)]);
    fig18a.row_f64("total_power", &[mean(&total_ratio)]);
    fig18a.row_f64("noc_energy", &[mean(&energy_ratio)]);
    fig18a.row_f64("perf_per_watt", &[mean(&perf_watt_ratio)]);
    fig18a.row_f64("perf_per_energy", &[mean(&perf_energy_ratio)]);

    // Fig 18b: area breakdown (analytic).
    let sram = SramModel::default();
    let total_l1 = cfg.total_l1_bytes();
    let base_cache = sram.area_mm2(cfg.cores, total_l1 / cfg.cores);
    let dcl1_cache = sram.area_mm2(40, total_l1 / 40);
    let queues = 40.0 * sram.node_queues_mm2(cfg.node_queue_entries, cfg.line_bytes);
    let base_noc = model.noc_area_mm2(&base_spec);
    let boost_noc = model.noc_area_mm2(&boost_spec);
    let mut fig18b = Table::new(
        "Fig 18b: area breakdown of Sh40+C10+Boost vs baseline",
        &["component", "baseline_mm2", "dcl1_mm2", "delta_vs_baseline_l1_or_noc"],
    );
    fig18b.row(
        "node queues",
        vec![
            "0.000".into(),
            format!("{queues:.3}"),
            format!("+{:.1}% of L1 area", 100.0 * queues / base_cache),
        ],
    );
    fig18b.row(
        "L1/DC-L1 caches",
        vec![
            format!("{base_cache:.3}"),
            format!("{dcl1_cache:.3}"),
            format!("{:+.1}%", 100.0 * (dcl1_cache / base_cache - 1.0)),
        ],
    );
    fig18b.row(
        "NoC",
        vec![
            format!("{base_noc:.3}"),
            format!("{boost_noc:.3}"),
            format!("{:+.1}%", 100.0 * (boost_noc / base_noc - 1.0)),
        ],
    );

    // §VIII latency analysis.
    let mut lat = Table::new(
        "SecVIII latency: load round-trip time (core cycles)",
        &["metric", "value"],
    );
    let rtt_base = mean(&stats.iter().step_by(2).map(|s| s.mean_load_rtt).collect::<Vec<_>>());
    let rtt_boost =
        mean(&stats.iter().skip(1).step_by(2).map(|s| s.mean_load_rtt).collect::<Vec<_>>());
    lat.row_f64("mean_rtt_baseline", &[rtt_base]);
    lat.row_f64("mean_rtt_boost", &[rtt_boost]);
    lat.row_f64("mean_rtt_ratio(boost/baseline)", &[mean(&rtt_ratio)]);
    vec![fig18a, fig18b, lat]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_breakdown_matches_paper_without_simulation() {
        // Queue overhead ≈ 6.25% of L1 area; DC-L1 caches ≈ −8%; NoC −50%.
        let cfg = GpuConfig::default();
        let sram = SramModel::default();
        let total_l1 = cfg.total_l1_bytes();
        let base_cache = sram.area_mm2(cfg.cores, total_l1 / cfg.cores);
        let queues = 40.0 * sram.node_queues_mm2(4, 128);
        assert!((queues / base_cache - 0.0625).abs() < 0.01);
        let dcl1_cache = sram.area_mm2(40, total_l1 / 40);
        assert!((dcl1_cache / base_cache - 0.92).abs() < 0.01);
        let model = CrossbarModel::default();
        let base = Design::Baseline.topology(&cfg).unwrap().noc_spec(&cfg);
        let boost = Design::flagship(&cfg).topology(&cfg).unwrap().noc_spec(&cfg);
        let ratio = model.noc_area_mm2(&boost) / model.noc_area_mm2(&base);
        assert!((ratio - 0.50).abs() < 0.04, "NoC ratio {ratio}");
    }
}
