//! **Extension (paper §VIII-A, closing remark)**: "our proposed designs
//! are expected to improve performance with larger DC-L1s or boosted NoC
//! resources." This experiment checks that expectation by sweeping the
//! total L1 budget (1×/2×/4×) under both the private baseline and the
//! flagship `Sh40+C10+Boost`, on the replication-sensitive applications.

use crate::runner::{run_apps, RunRequest, Scale};
use crate::table::Table;
use dcl1::{Design, GpuConfig};
use dcl1_common::stats::geomean;
use dcl1_workloads::replication_sensitive;

/// Runs the capacity-scaling extension.
pub fn run(scale: Scale) -> Vec<Table> {
    let apps = replication_sensitive();
    let budgets = [1usize, 2, 4];
    let mut reqs = Vec::new();
    for app in &apps {
        for mult in budgets {
            let cfg = GpuConfig {
                l1_bytes: 16 * 1024 * mult,
                ..GpuConfig::default()
            };
            reqs.push(RunRequest {
                cfg: cfg.clone(),
                ..RunRequest::new(*app, Design::Baseline)
            });
            reqs.push(RunRequest {
                cfg: cfg.clone(),
                ..RunRequest::new(*app, Design::flagship(&cfg))
            });
        }
    }
    let stats = run_apps(&reqs, scale);
    let per = budgets.len() * 2;

    let mut t = Table::new(
        "Extension: L1-budget scaling (geomean IPC over repl-sensitive apps, normalized to 1x baseline)",
        &["budget", "Baseline", "Sh40+C10+Boost", "flagship_advantage"],
    );
    for (k, mult) in budgets.iter().enumerate() {
        let base: Vec<f64> = (0..apps.len())
            .map(|i| stats[i * per + 2 * k].ipc() / stats[i * per].ipc())
            .collect();
        let flag: Vec<f64> = (0..apps.len())
            .map(|i| stats[i * per + 2 * k + 1].ipc() / stats[i * per].ipc())
            .collect();
        let (gb, gf) = (geomean(&base), geomean(&flag));
        t.row_f64(format!("{mult}x L1"), &[gb, gf, gf / gb]);
    }
    vec![t]
}
