//! **Fig 11**: cluster-count sweep (C1 = Sh40 … C40 = Pr40) on the
//! replication-sensitive applications — L1 miss rate and IPC.

use crate::experiments::cluster_sweep;
use crate::runner::{run_apps, RunRequest, Scale};
use crate::table::Table;
use dcl1::Design;
use dcl1_workloads::replication_sensitive;

/// Runs the clustered shared DC-L1 sweep.
pub fn run(scale: Scale) -> Vec<Table> {
    let apps = replication_sensitive();
    let sweep = cluster_sweep();
    let mut reqs = Vec::new();
    for app in &apps {
        reqs.push(RunRequest::new(*app, Design::Baseline));
        for (_, d) in &sweep {
            reqs.push(RunRequest::new(*app, *d));
        }
    }
    let stats = run_apps(&reqs, scale);
    let per = 1 + sweep.len();

    let labels: Vec<&str> = sweep.iter().map(|(l, _)| l.as_str()).collect();
    let mut hdr = vec!["app"];
    hdr.extend(&labels);
    let mut miss = Table::new("Fig 11 (top): L1 miss rate normalized to baseline", &hdr);
    let mut ipc = Table::new("Fig 11 (bottom): IPC normalized to baseline", &hdr);

    let mut miss_cols = vec![Vec::new(); sweep.len()];
    let mut ipc_cols = vec![Vec::new(); sweep.len()];
    for (i, app) in apps.iter().enumerate() {
        let base = &stats[i * per];
        let mut mrow = Vec::new();
        let mut irow = Vec::new();
        for j in 0..sweep.len() {
            let s = &stats[i * per + 1 + j];
            let m = s.l1_miss_rate() / base.l1_miss_rate().max(1e-9);
            let p = s.ipc() / base.ipc();
            mrow.push(m);
            irow.push(p);
            miss_cols[j].push(m);
            ipc_cols[j].push(p);
        }
        miss.row_f64(app.name, &mrow);
        ipc.row_f64(app.name, &irow);
    }
    miss.row_geomean("GEOMEAN", &miss_cols);
    ipc.row_geomean("GEOMEAN", &ipc_cols);
    vec![miss, ipc]
}
