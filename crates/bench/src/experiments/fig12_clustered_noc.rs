//! **Fig 12**: NoC area and static power across cluster counts
//! (analytic, DSENT-like model).

use crate::experiments::cluster_sweep;
use crate::runner::Scale;
use crate::table::Table;
use dcl1::{Design, GpuConfig};
use dcl1_power::CrossbarModel;

/// Emits the clustered NoC area/power sweep.
pub fn run(_scale: Scale) -> Vec<Table> {
    let cfg = GpuConfig::default();
    let model = CrossbarModel::default();
    let base_spec = Design::Baseline.topology(&cfg).expect("resolves").noc_spec(&cfg);
    let base_area = model.noc_area_mm2(&base_spec);
    let base_pwr = model.noc_static_mw(&base_spec);

    let mut t = Table::new(
        "Fig 12: NoC area and static power per cluster count (normalized to baseline)",
        &["config", "area_norm", "static_norm"],
    );
    for (label, d) in cluster_sweep() {
        let spec = d.topology(&cfg).expect("resolves").noc_spec(&cfg);
        t.row_f64(
            label,
            &[
                model.noc_area_mm2(&spec) / base_area,
                model.noc_static_mw(&spec) / base_pwr,
            ],
        );
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clustered_savings_match_paper() {
        let t = &run(Scale::Smoke)[0];
        // Paper: C5 −45%, C10 −50%, C20 −45% area.
        assert!((t.cell_f64("C5", "area_norm").unwrap() - 0.55).abs() < 0.04);
        assert!((t.cell_f64("C10", "area_norm").unwrap() - 0.50).abs() < 0.04);
        assert!((t.cell_f64("C20", "area_norm").unwrap() - 0.55).abs() < 0.04);
        // Static power savings for C10 in the paper's direction (−16%).
        let c10 = t.cell_f64("C10", "static_norm").unwrap();
        assert!(c10 < 1.0 && c10 > 0.6, "C10 static {c10}");
    }
}
