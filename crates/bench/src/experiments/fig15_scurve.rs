//! **Fig 15**: speedup S-curves — per-app speedups of each proposed
//! design over all 28 applications, sorted ascending per design.

use crate::experiments::proposed_designs;
use crate::runner::{run_apps, RunRequest, Scale};
use crate::table::Table;
use dcl1::Design;
use dcl1_workloads::all_apps;

/// Runs the S-curve study.
pub fn run(scale: Scale) -> Vec<Table> {
    let apps = all_apps();
    let designs = proposed_designs();
    let mut reqs = Vec::new();
    for app in &apps {
        reqs.push(RunRequest::new(*app, Design::Baseline));
        for d in &designs {
            reqs.push(RunRequest::new(*app, *d));
        }
    }
    let stats = run_apps(&reqs, scale);
    let per = 1 + designs.len();

    // Per design: speedups sorted ascending (the S-curve's x axis is the
    // sorted rank, so app identity differs per column — as in the paper).
    let mut curves: Vec<Vec<f64>> = Vec::new();
    for j in 0..designs.len() {
        let mut col: Vec<f64> = (0..apps.len())
            .map(|i| stats[i * per + 1 + j].ipc() / stats[i * per].ipc())
            .collect();
        col.sort_by(f64::total_cmp);
        curves.push(col);
    }

    let mut t = Table::new(
        "Fig 15: speedup S-curves (sorted ascending per design; rank rows)",
        &["rank", "Pr40", "Sh40", "Sh40+C10", "Sh40+C10+Boost"],
    );
    for r in 0..apps.len() {
        let row: Vec<f64> = curves.iter().map(|c| c[r]).collect();
        t.row_f64(format!("{:02}", r + 1), &row);
    }
    vec![t]
}
