//! **Fig 14**: IPC of all four proposed designs over the
//! replication-sensitive applications, plus class and overall means.

use crate::experiments::proposed_designs;
use crate::runner::{run_apps, RunRequest, Scale};
use crate::table::Table;
use dcl1::Design;
use dcl1_workloads::all_apps;

/// Runs the headline comparison.
pub fn run(scale: Scale) -> Vec<Table> {
    let apps = all_apps();
    let designs = proposed_designs();
    let mut reqs = Vec::new();
    for app in &apps {
        reqs.push(RunRequest::new(*app, Design::Baseline));
        for d in &designs {
            reqs.push(RunRequest::new(*app, *d));
        }
    }
    let stats = run_apps(&reqs, scale);
    let per = 1 + designs.len();

    let mut t = Table::new(
        "Fig 14: IPC normalized to baseline (replication-sensitive apps + class means)",
        &["app", "Pr40", "Sh40", "Sh40+C10", "Sh40+C10+Boost"],
    );
    let mut sens = vec![Vec::new(); designs.len()];
    let mut insens = vec![Vec::new(); designs.len()];
    let mut all = vec![Vec::new(); designs.len()];
    for (i, app) in apps.iter().enumerate() {
        let base = &stats[i * per];
        let mut row = Vec::new();
        for j in 0..designs.len() {
            let r = stats[i * per + 1 + j].ipc() / base.ipc();
            row.push(r);
            all[j].push(r);
            if app.replication_sensitive {
                sens[j].push(r);
            } else {
                insens[j].push(r);
            }
        }
        if app.replication_sensitive {
            t.row_f64(app.name, &row);
        }
    }
    t.row_geomean("GEOMEAN(sensitive)", &sens);
    t.row_geomean("GEOMEAN(insensitive)", &insens);
    t.row_geomean("GEOMEAN(all 28)", &all);
    vec![t]
}
