//! **Fig 9**: Sh40 on the replication-insensitive applications,
//! highlighting the five poor performers.

use crate::runner::{run_apps, RunRequest, Scale};
use crate::table::Table;
use dcl1::Design;
use dcl1_workloads::replication_insensitive;

/// Runs the insensitive-application study.
pub fn run(scale: Scale) -> Vec<Table> {
    let apps = replication_insensitive();
    let mut reqs = Vec::new();
    for app in &apps {
        reqs.push(RunRequest::new(*app, Design::Baseline));
        reqs.push(RunRequest::new(*app, Design::Shared { nodes: 40 }));
    }
    let stats = run_apps(&reqs, scale);

    let mut t = Table::new(
        "Fig 9: Sh40 on replication-insensitive apps (IPC normalized to baseline)",
        &["app", "ipc_norm", "poor_performer"],
    );
    let mut rows: Vec<(usize, f64)> = (0..apps.len())
        .map(|i| (i, stats[2 * i + 1].ipc() / stats[2 * i].ipc()))
        .collect();
    rows.sort_by(|a, b| a.1.total_cmp(&b.1));
    let mut all = Vec::new();
    for (i, ratio) in rows {
        all.push(ratio);
        t.row(
            apps[i].name,
            vec![
                format!("{ratio:.3}"),
                if apps[i].poor_performing { "yes".into() } else { "".into() },
            ],
        );
    }
    t.row_geomean("GEOMEAN", &[&all]);
    vec![t]
}
