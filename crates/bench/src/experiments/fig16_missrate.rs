//! **Fig 16**: (DC-)L1 miss rate of each proposed design normalized to
//! baseline, plus the mean replica counts the paper quotes (7.7 baseline
//! / 5.7 Pr40 / 2.8 Sh40+C10+Boost / 0 replicas ≙ 1 copy under Sh40).

use crate::experiments::proposed_designs;
use crate::runner::{run_apps, RunRequest, Scale};
use crate::table::Table;
use dcl1::Design;
use dcl1_common::stats::mean;
use dcl1_workloads::replication_sensitive;

/// Runs the miss-rate / replica-count study.
pub fn run(scale: Scale) -> Vec<Table> {
    let apps = replication_sensitive();
    let designs = proposed_designs();
    let mut reqs = Vec::new();
    for app in &apps {
        reqs.push(RunRequest::new(*app, Design::Baseline));
        for d in &designs {
            reqs.push(RunRequest::new(*app, *d));
        }
    }
    let stats = run_apps(&reqs, scale);
    let per = 1 + designs.len();

    let mut t = Table::new(
        "Fig 16: L1 miss rate normalized to baseline (replication-sensitive apps)",
        &["app", "Pr40", "Sh40", "Sh40+C10", "Sh40+C10+Boost"],
    );
    let mut cols = vec![Vec::new(); designs.len()];
    for (i, app) in apps.iter().enumerate() {
        let base = &stats[i * per];
        let mut row = Vec::new();
        for j in 0..designs.len() {
            let m = stats[i * per + 1 + j].l1_miss_rate() / base.l1_miss_rate().max(1e-9);
            row.push(m);
            cols[j].push(m);
        }
        t.row_f64(app.name, &row);
    }
    t.row_geomean("GEOMEAN", &cols);

    // Mean replica counts (copies per distinct resident line).
    let mut reps = Table::new(
        "Fig 16 (replicas): mean copies per distinct resident line",
        &["config", "mean_replicas"],
    );
    let base_reps: Vec<f64> = (0..apps.len()).map(|i| stats[i * per].mean_replicas).collect();
    reps.row_f64("Baseline", &[mean(&base_reps)]);
    for (j, d) in designs.iter().enumerate() {
        let v: Vec<f64> =
            (0..apps.len()).map(|i| stats[i * per + 1 + j].mean_replicas).collect();
        reps.row_f64(d.name(), &[mean(&v)]);
    }
    vec![t, reps]
}
