//! **Fig 1 + §II-A**: per-application replication ratio, raw L1 miss
//! rate, IPC improvement under a 16× L1, and the hypothetical
//! no-replication single L1.

use crate::runner::{run_apps, RunRequest, Scale};
use crate::table::Table;
use dcl1::{Design, GpuConfig};
use dcl1_workloads::{all_apps, replication_sensitive};

/// Runs the motivation study.
pub fn run(scale: Scale) -> Vec<Table> {
    let apps = all_apps();

    // Baseline + 16×-capacity baseline for every app.
    let cfg16 = GpuConfig { l1_bytes: 16 * 16 * 1024, ..GpuConfig::default() };
    let mut reqs = Vec::new();
    for app in &apps {
        reqs.push(RunRequest::new(*app, Design::Baseline));
        reqs.push(RunRequest {
            cfg: cfg16.clone(),
            ..RunRequest::new(*app, Design::Baseline)
        });
    }
    let stats = run_apps(&reqs, scale);

    // Sorted ascending by replication ratio, as in the paper's Fig 1.
    let mut rows: Vec<(usize, f64)> = (0..apps.len())
        .map(|i| (i, stats[2 * i].replication_ratio()))
        .collect();
    rows.sort_by(|a, b| a.1.total_cmp(&b.1));

    let mut fig1 = Table::new(
        "Fig 1: replication ratio, L1 miss rate, IPC at 16x L1 (ascending replication)",
        &["app", "repl_ratio", "miss_rate", "ipc_16x", "sensitive"],
    );
    for (i, _) in rows {
        let base = &stats[2 * i];
        let big = &stats[2 * i + 1];
        fig1.row(
            apps[i].name,
            vec![
                format!("{:.3}", base.replication_ratio()),
                format!("{:.3}", base.l1_miss_rate()),
                format!("{:.3}", big.ipc() / base.ipc()),
                if apps[i].replication_sensitive { "yes".into() } else { "".into() },
            ],
        );
    }

    // §II-A hypothetical: one L1, total capacity and bandwidth, on the
    // replication-sensitive subset.
    let sens = replication_sensitive();
    let mut reqs = Vec::new();
    for app in &sens {
        reqs.push(RunRequest::new(*app, Design::Baseline));
        reqs.push(RunRequest::new(*app, Design::IdealSingleL1));
    }
    let istats = run_apps(&reqs, scale);
    let mut hypo = Table::new(
        "SecII-A: hypothetical single L1 (no replication) on replication-sensitive apps",
        &["app", "miss_base", "miss_ideal", "miss_reduction", "ipc_norm"],
    );
    let mut reductions = Vec::new();
    let mut speedups = Vec::new();
    for (i, app) in sens.iter().enumerate() {
        let base = &istats[2 * i];
        let ideal = &istats[2 * i + 1];
        let red = 1.0 - ideal.l1_miss_rate() / base.l1_miss_rate().max(1e-9);
        reductions.push(red);
        speedups.push(ideal.ipc() / base.ipc());
        hypo.row_f64(
            app.name,
            &[base.l1_miss_rate(), ideal.l1_miss_rate(), red, ideal.ipc() / base.ipc()],
        );
    }
    hypo.row_f64(
        "MEAN",
        &[
            f64::NAN,
            f64::NAN,
            dcl1_common::stats::mean(&reductions),
            dcl1_common::stats::mean(&speedups),
        ],
    );
    vec![fig1, hypo]
}
