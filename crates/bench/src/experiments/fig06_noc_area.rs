//! **Fig 6 + §V-B**: NoC area and static power of the private DC-L1
//! designs and Sh40, from the DSENT-like model (analytic).

use crate::runner::Scale;
use crate::table::Table;
use dcl1::{Design, GpuConfig};
use dcl1_power::CrossbarModel;

/// Emits the NoC area/static-power comparison.
pub fn run(_scale: Scale) -> Vec<Table> {
    let cfg = GpuConfig::default();
    let model = CrossbarModel::default();
    let designs = [
        Design::Baseline,
        Design::Private { nodes: 80 },
        Design::Private { nodes: 40 },
        Design::Private { nodes: 20 },
        Design::Private { nodes: 10 },
        Design::Shared { nodes: 40 },
    ];
    let base_spec = Design::Baseline.topology(&cfg).expect("resolves").noc_spec(&cfg);
    let base_area = model.noc_area_mm2(&base_spec);
    let base_pwr = model.noc_static_mw(&base_spec);

    let mut t = Table::new(
        "Fig 6 / SecV-B: NoC area and static power (normalized to baseline)",
        &["config", "area_mm2", "area_norm", "static_mw", "static_norm"],
    );
    for d in designs {
        let spec = d.topology(&cfg).expect("resolves").noc_spec(&cfg);
        let area = model.noc_area_mm2(&spec);
        let pwr = model.noc_static_mw(&spec);
        t.row_f64(d.name(), &[area, area / base_area, pwr, pwr / base_pwr]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_ratios() {
        let t = &run(Scale::Smoke)[0];
        // Paper: Pr40 −28%, Pr20 −54%, Pr10 −67%, Sh40 +69%.
        assert!((t.cell_f64("Pr40", "area_norm").unwrap() - 0.72).abs() < 0.03);
        assert!((t.cell_f64("Pr20", "area_norm").unwrap() - 0.46).abs() < 0.03);
        assert!((t.cell_f64("Pr10", "area_norm").unwrap() - 0.33).abs() < 0.03);
        assert!(t.cell_f64("Sh40", "area_norm").unwrap() > 1.5);
        // Pr40 static power near baseline (paper −4%).
        assert!((t.cell_f64("Pr40", "static_norm").unwrap() - 0.96).abs() < 0.05);
    }
}
