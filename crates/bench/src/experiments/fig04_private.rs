//! **Fig 4**: private DC-L1 aggregation (Pr80/Pr40/Pr20/Pr10) on the
//! replication-sensitive applications — IPC, DC-L1 miss rate, and the
//! perfect-cache limit study.

use crate::runner::{run_apps, RunRequest, Scale};
use crate::table::Table;
use dcl1::{Design, SimOptions};
use dcl1_common::stats::geomean;
use dcl1_workloads::replication_sensitive;

const NODE_COUNTS: [usize; 4] = [80, 40, 20, 10];

/// Runs the private DC-L1 study.
pub fn run(scale: Scale) -> Vec<Table> {
    let apps = replication_sensitive();

    let mut reqs = Vec::new();
    for app in &apps {
        reqs.push(RunRequest::new(*app, Design::Baseline));
        for y in NODE_COUNTS {
            reqs.push(RunRequest::new(*app, Design::Private { nodes: y }));
        }
    }
    let stats = run_apps(&reqs, scale);
    let per = 1 + NODE_COUNTS.len();

    let mut ipc = Table::new(
        "Fig 4a: IPC of private DC-L1 designs (normalized to baseline)",
        &["app", "Pr80", "Pr40", "Pr20", "Pr10"],
    );
    let mut miss = Table::new(
        "Fig 4b: DC-L1 miss rate (normalized to baseline L1 miss rate)",
        &["app", "Pr80", "Pr40", "Pr20", "Pr10"],
    );
    let mut ipc_cols = vec![Vec::new(); NODE_COUNTS.len()];
    let mut miss_cols = vec![Vec::new(); NODE_COUNTS.len()];
    for (i, app) in apps.iter().enumerate() {
        let base = &stats[i * per];
        let mut ipc_row = Vec::new();
        let mut miss_row = Vec::new();
        for (j, _) in NODE_COUNTS.iter().enumerate() {
            let s = &stats[i * per + 1 + j];
            let r_ipc = s.ipc() / base.ipc();
            let r_miss = s.l1_miss_rate() / base.l1_miss_rate().max(1e-9);
            ipc_row.push(r_ipc);
            miss_row.push(r_miss);
            ipc_cols[j].push(r_ipc);
            miss_cols[j].push(r_miss);
        }
        ipc.row_f64(app.name, &ipc_row);
        miss.row_f64(app.name, &miss_row);
    }
    ipc.row_geomean("GEOMEAN", &ipc_cols);
    miss.row_geomean("GEOMEAN", &miss_cols);

    // Fig 4c: normal vs perfect DC-L1$ (plus the perfect private baseline).
    let mut reqs = Vec::new();
    let perfect = SimOptions { perfect_l1: true, ..SimOptions::default() };
    for app in &apps {
        reqs.push(RunRequest::new(*app, Design::Baseline));
        reqs.push(RunRequest { opts: perfect, ..RunRequest::new(*app, Design::Baseline) });
        for y in NODE_COUNTS {
            reqs.push(RunRequest {
                opts: perfect,
                ..RunRequest::new(*app, Design::Private { nodes: y })
            });
        }
    }
    let pstats = run_apps(&reqs, scale);
    let pper = 2 + NODE_COUNTS.len();
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 1 + NODE_COUNTS.len()];
    for i in 0..apps.len() {
        let base = &pstats[i * pper];
        cols[0].push(pstats[i * pper + 1].ipc() / base.ipc());
        for j in 0..NODE_COUNTS.len() {
            cols[1 + j].push(pstats[i * pper + 2 + j].ipc() / base.ipc());
        }
    }
    let mut fig4c = Table::new(
        "Fig 4c: mean IPC with perfect (100% hit) caches, normalized to baseline",
        &["config", "perfect_ipc_norm"],
    );
    fig4c.row_f64("Base(perfect L1)", &[geomean(&cols[0])]);
    for (j, y) in NODE_COUNTS.iter().enumerate() {
        fig4c.row_f64(format!("Pr{y}(perfect)"), &[geomean(&cols[1 + j])]);
    }
    vec![ipc, miss, fig4c]
}
