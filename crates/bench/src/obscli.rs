//! Shared `--trace` / `--metrics` command-line handling for the bench
//! binaries, plus the observed-run report (stall attribution alongside
//! IPC) both binaries print.

use crate::runner::{run_app_observed, RunRequest, Scale};
use crate::table::Table;
use dcl1::{Design, GpuConfig, MetricsFormat, Observer, RunStats, SimOptions};
use dcl1_obs::progress::ProgressSink;
use dcl1_workloads::by_name;
use std::fs::File;
use std::path::PathBuf;
use std::sync::Arc;

/// Default trace output path.
pub const DEFAULT_TRACE_PATH: &str = "dcl1-trace.json";
/// Default metrics output path (`.csv` suffix switches the format).
pub const DEFAULT_METRICS_PATH: &str = "dcl1-metrics.jsonl";
/// Default progress-stream output path.
pub const DEFAULT_PROGRESS_PATH: &str = "BENCH_progress.jsonl";

/// Parsed observability flags.
///
/// Recognized (and removed from the argument list by [`ObsCli::parse`]):
///
/// * `--trace[=PATH]` — Chrome trace-event JSON (default
///   `dcl1-trace.json`), open in Perfetto / `chrome://tracing`;
/// * `--trace-sample=N` — record every Nth transaction (default 1);
/// * `--metrics[=PATH]` — time-series samples, JSONL by default, CSV when
///   `PATH` ends in `.csv` (default `dcl1-metrics.jsonl`);
/// * `--metrics-interval=N` — cycles between samples (default 1024);
/// * `--observe=APP/DESIGN` — the point to instrument (default
///   `C-BLK/flagship`; `DESIGN` is `baseline`, `flagship`, `prN`, `shN`,
///   or any full design name such as `sh16+c8+boost`);
/// * `--check` — checked-sim mode: every run executes under the machine's
///   conservation-invariant harness (memo bypassed; stats unchanged);
/// * `--progress[=PATH]` — stream per-point lifecycle events (queued,
///   started, progress %, retry, quarantined, completed with live KHz) as
///   JSONL (default `BENCH_progress.jsonl`). Binaries must call
///   [`ObsCli::install_progress`] before running for the stream to open.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsCli {
    /// Trace output path, when tracing was requested.
    pub trace: Option<PathBuf>,
    /// Record every Nth transaction.
    pub trace_sample: u64,
    /// Metrics output path, when metrics were requested.
    pub metrics: Option<PathBuf>,
    /// Cycles between metrics samples.
    pub metrics_interval: u64,
    /// `APP/DESIGN` selector for the observed point.
    pub observe: String,
    /// Checked-sim mode (`--check`).
    pub check: bool,
    /// Progress-stream output path, when `--progress` was given.
    pub progress: Option<PathBuf>,
}

impl Default for ObsCli {
    fn default() -> Self {
        ObsCli {
            trace: None,
            trace_sample: 1,
            metrics: None,
            metrics_interval: 1024,
            observe: "C-BLK/flagship".to_string(),
            check: false,
            progress: None,
        }
    }
}

impl ObsCli {
    /// Extracts observability flags from `args`, leaving every other
    /// argument in place.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on a malformed value (e.g. a
    /// non-numeric `--metrics-interval`).
    pub fn parse(args: &mut Vec<String>) -> ObsCli {
        let mut cli = ObsCli::default();
        args.retain(|arg| {
            let (flag, value) = match arg.split_once('=') {
                Some((f, v)) => (f, Some(v)),
                None => (arg.as_str(), None),
            };
            match flag {
                "--trace" => {
                    cli.trace = Some(PathBuf::from(value.unwrap_or(DEFAULT_TRACE_PATH)));
                }
                "--trace-sample" => {
                    cli.trace_sample = value
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| panic!("--trace-sample needs =N, got {arg:?}"));
                }
                "--metrics" => {
                    cli.metrics = Some(PathBuf::from(value.unwrap_or(DEFAULT_METRICS_PATH)));
                }
                "--metrics-interval" => {
                    cli.metrics_interval = value
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| panic!("--metrics-interval needs =N, got {arg:?}"));
                }
                "--observe" => {
                    cli.observe = value
                        .unwrap_or_else(|| panic!("--observe needs =APP/DESIGN"))
                        .to_string();
                }
                "--check" => {
                    cli.check = true;
                }
                "--progress" => {
                    cli.progress = Some(PathBuf::from(value.unwrap_or(DEFAULT_PROGRESS_PATH)));
                }
                _ => return true,
            }
            false
        });
        if cli.check {
            crate::runner::set_check_mode(true);
        }
        cli
    }

    /// Opens the `--progress` stream (when requested) and installs it as
    /// the process-wide sink every subsequent run reports to. Call once,
    /// before the sweep starts.
    ///
    /// # Panics
    ///
    /// Panics when the output file cannot be created.
    pub fn install_progress(&self) {
        if let Some(path) = &self.progress {
            let file = File::create(path)
                .unwrap_or_else(|e| panic!("cannot create {}: {e}", path.display()));
            crate::runner::set_progress_sink(Some(Arc::new(ProgressSink::new(Box::new(file)))));
            eprintln!("[progress] streaming point events to {}", path.display());
        }
    }

    /// Whether any sink was requested.
    pub fn enabled(&self) -> bool {
        self.trace.is_some() || self.metrics.is_some()
    }

    /// Resolves `--observe` into a run request against `cfg`.
    ///
    /// # Panics
    ///
    /// Panics when the app or design name does not resolve.
    pub fn observe_request(&self, cfg: &GpuConfig) -> RunRequest {
        let (app_name, design_name) = self
            .observe
            .split_once('/')
            .unwrap_or_else(|| panic!("--observe must be APP/DESIGN, got {:?}", self.observe));
        let app = by_name(app_name)
            .unwrap_or_else(|| panic!("unknown app {app_name:?} in --observe"));
        let design = parse_design(design_name, cfg)
            .unwrap_or_else(|| panic!("unknown design {design_name:?} in --observe"));
        RunRequest { app, design, cfg: cfg.clone(), opts: SimOptions::default() }
    }

    /// Builds the observer, opening the requested output files.
    ///
    /// # Panics
    ///
    /// Panics when an output file cannot be created.
    pub fn build_observer(&self) -> Observer {
        let mut obs = Observer::disabled();
        if let Some(path) = &self.trace {
            let file = File::create(path)
                .unwrap_or_else(|e| panic!("cannot create {}: {e}", path.display()));
            obs = obs
                .with_trace(Box::new(file), self.trace_sample)
                .unwrap_or_else(|e| panic!("cannot start trace: {e}"));
        }
        if let Some(path) = &self.metrics {
            let format = if path.extension().is_some_and(|e| e == "csv") {
                MetricsFormat::Csv
            } else {
                MetricsFormat::Jsonl
            };
            let file = File::create(path)
                .unwrap_or_else(|e| panic!("cannot create {}: {e}", path.display()));
            obs = obs.with_metrics(Box::new(file), self.metrics_interval, format);
        }
        obs
    }

    /// If any sink was requested: runs the `--observe` point with the
    /// sinks attached and prints the stall-attribution report. Called by
    /// both bench binaries before their normal work.
    pub fn run_if_enabled(&self, scale: Scale) {
        if !self.enabled() {
            return;
        }
        let cfg = GpuConfig::default();
        let req = self.observe_request(&cfg);
        eprintln!(
            "[observe] simulating {}/{} with{}{}",
            req.app.name,
            req.design.name(),
            self.trace
                .as_ref()
                .map(|p| format!(" trace={}(every {})", p.display(), self.trace_sample))
                .unwrap_or_default(),
            self.metrics
                .as_ref()
                .map(|p| format!(" metrics={}(interval {})", p.display(), self.metrics_interval))
                .unwrap_or_default(),
        );
        let stats = run_app_observed(&req, scale, self.build_observer());
        println!("{}", stall_report(&req, &stats));
        if let Some(p) = &self.trace {
            eprintln!("[observe] trace written to {} (open in https://ui.perfetto.dev)", p.display());
        }
        if let Some(p) = &self.metrics {
            eprintln!("[observe] metrics written to {}", p.display());
        }
    }
}

/// Resolves a design selector: `baseline`, `flagship`, `prN`, `shN`, or
/// any full design name `Design::from_str` accepts (e.g. `sh16+c8+boost`).
fn parse_design(name: &str, cfg: &GpuConfig) -> Option<Design> {
    let lower = name.to_ascii_lowercase();
    if lower == "baseline" {
        return Some(Design::Baseline);
    }
    if lower == "flagship" {
        return Some(Design::flagship(cfg));
    }
    if let Some(n) = lower.strip_prefix("pr").and_then(|n| n.parse().ok()) {
        return Some(Design::Private { nodes: n });
    }
    if let Some(n) = lower.strip_prefix("sh").and_then(|n| n.parse().ok()) {
        return Some(Design::Shared { nodes: n });
    }
    name.parse().ok()
}

/// The stall-attribution table printed alongside IPC for an observed run:
/// where every non-issuing core cycle went, as absolute cycles and as a
/// share of the core-cycle budget (`cores × cycles`).
pub fn stall_report(req: &RunRequest, stats: &RunStats) -> Table {
    let budget = stats.cycles.saturating_mul(req.cfg.cores as u64);
    let pct = |v: u64| {
        if budget == 0 {
            "0.0%".to_string()
        } else {
            format!("{:.1}%", 100.0 * v as f64 / budget as f64)
        }
    };
    let mut t = Table::new(
        format!(
            "Stall attribution: {}/{} (IPC {:.3}, {} cycles)",
            req.app.name,
            stats.design,
            stats.ipc(),
            stats.cycles
        ),
        &["class", "cycles", "share of core-cycles"],
    );
    t.row("issued instruction", vec![stats.instructions.to_string(), pct(stats.instructions)]);
    for (label, v) in [
        ("idle: core drained", stats.stall_drained),
        ("idle: all wavefronts ALU-busy", stats.stall_alu_busy),
        ("idle: waiting on memory fill", stats.stall_fill_wait),
        ("mem stall: outbox draining", stats.stall_mem_outbox),
        ("mem stall: L1 queue full", stats.stall_mem_l1_queue),
        ("mem stall: NoC backpressure", stats.stall_mem_noc),
    ] {
        t.row(label, vec![v.to_string(), pct(v)]);
    }
    t.row(
        "node structural: MSHR full",
        vec![stats.l1_mshr_stall_cycles.to_string(), "-".to_string()],
    );
    t.row(
        "node structural: queue/port",
        vec![stats.l1_queue_stall_cycles.to_string(), "-".to_string()],
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_strips_only_observability_flags() {
        let mut args: Vec<String> = [
            "fig14",
            "--trace",
            "--metrics=out.csv",
            "--metrics-interval=256",
            "--trace-sample=8",
            "--observe=C-HST/sh40",
            "--progress",
            "--keep-cache",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let cli = ObsCli::parse(&mut args);
        assert_eq!(args, vec!["fig14".to_string(), "--keep-cache".to_string()]);
        assert_eq!(cli.trace.as_deref(), Some(std::path::Path::new(DEFAULT_TRACE_PATH)));
        assert_eq!(cli.trace_sample, 8);
        assert_eq!(cli.metrics.as_deref(), Some(std::path::Path::new("out.csv")));
        assert_eq!(cli.metrics_interval, 256);
        assert_eq!(cli.observe, "C-HST/sh40");
        assert_eq!(cli.progress.as_deref(), Some(std::path::Path::new(DEFAULT_PROGRESS_PATH)));
        assert!(cli.enabled());
    }

    #[test]
    fn defaults_are_off() {
        let mut args = vec!["fig01".to_string()];
        let cli = ObsCli::parse(&mut args);
        assert_eq!(cli, ObsCli::default());
        assert!(!cli.enabled());
    }

    #[test]
    fn design_selectors_resolve() {
        let cfg = GpuConfig::default();
        assert_eq!(parse_design("baseline", &cfg), Some(Design::Baseline));
        assert_eq!(parse_design("pr40", &cfg), Some(Design::Private { nodes: 40 }));
        assert_eq!(parse_design("Sh20", &cfg), Some(Design::Shared { nodes: 20 }));
        assert_eq!(parse_design("flagship", &cfg), Some(Design::flagship(&cfg)));
        assert_eq!(parse_design("bogus", &cfg), None);
    }

    #[test]
    fn stall_report_shows_every_class() {
        let req = RunRequest::new(by_name("C-BLK").unwrap(), Design::Baseline);
        let stats = RunStats {
            design: "Baseline".to_string(),
            cycles: 100,
            instructions: 50,
            stall_fill_wait: 30,
            stall_mem_noc: 20,
            ..RunStats::default()
        };
        let t = stall_report(&req, &stats);
        assert_eq!(t.cell("issued instruction", "cycles"), Some("50"));
        assert_eq!(t.cell("idle: waiting on memory fill", "cycles"), Some("30"));
        assert_eq!(t.cell("mem stall: NoC backpressure", "cycles"), Some("20"));
        assert!(t.title.contains("IPC 0.500"));
    }
}
