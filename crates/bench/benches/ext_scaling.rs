//! Extension: L1-budget scaling under the flagship design.
fn main() {
    let scale = dcl1_bench::Scale::from_env();
    for table in dcl1_bench::experiments::ext_scaling::run(scale) {
        println!("{table}");
    }
}
