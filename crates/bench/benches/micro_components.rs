//! Micro-benchmarks for the simulator's hot components: cache lookups,
//! crossbar ticks, trace generation, and a short end-to-end step loop.
//! These guard the simulator's own performance (the figure benches are
//! wall-clock-bound by it).
//!
//! Hand-rolled timing harness (no external bench framework): each
//! benchmark is warmed up, then run in batches until ~0.5 s of samples
//! accumulate, reporting the median per-iteration time.

// Bench harness: panicking on a broken setup is the right failure mode.
#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)]

use dcl1::{Design, GpuConfig, GpuSystem, SimOptions};
use dcl1_cache::{CacheGeometry, SetAssocCache};
use dcl1_common::LineAddr;
use dcl1_gpu::TraceSource;
use dcl1_noc::{Crossbar, CrossbarConfig, Packet};
use dcl1_workloads::{by_name, AppTrace};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Runs `f` repeatedly in timed batches and prints the median ns/iter.
fn bench(name: &str, mut f: impl FnMut()) {
    const BATCH: u32 = 10_000;
    // Warm-up: one batch, untimed.
    for _ in 0..BATCH {
        f();
    }
    let mut samples: Vec<f64> = Vec::new();
    let budget = Duration::from_millis(500);
    let start = Instant::now();
    while start.elapsed() < budget {
        let t0 = Instant::now();
        for _ in 0..BATCH {
            f();
        }
        samples.push(t0.elapsed().as_nanos() as f64 / f64::from(BATCH));
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let (lo, hi) = (samples[0], samples[samples.len() - 1]);
    println!("{name:<36} {median:>10.1} ns/iter   (min {lo:.1}, max {hi:.1}, n={})", samples.len());
}

fn bench_cache() {
    let geom = CacheGeometry::new(16 * 1024, 4, 128).unwrap();
    let mut cache = SetAssocCache::new(geom);
    let mut i = 0u64;
    bench("cache_lookup_fill_mix", || {
        i = i.wrapping_add(0x9E37_79B9);
        let line = LineAddr::new(i % 4096);
        if cache.lookup(black_box(line)) == dcl1_cache::LookupResult::Miss {
            cache.fill(line);
        }
    });
}

fn bench_crossbar() {
    let mut x: Crossbar<u64> = Crossbar::new(CrossbarConfig::new(8, 4).unwrap());
    let mut n = 0u64;
    bench("crossbar_8x4_saturated_tick", || {
        for src in 0..8 {
            if x.can_inject(src) {
                n += 1;
                let _ = x.try_inject(Packet::new(src, (n % 4) as usize, 32, n));
            }
        }
        x.tick();
        for out in 0..4 {
            while x.pop_output(out).is_some() {}
        }
    });
}

fn bench_crossbar_idle() {
    let mut x: Crossbar<u64> = Crossbar::new(CrossbarConfig::new(8, 4).unwrap());
    bench("crossbar_8x4_idle_tick", || {
        x.tick();
    });
}

fn bench_trace() {
    let spec = by_name("T-AlexNet").unwrap();
    let mut t = AppTrace::new(spec, 0, 0);
    bench("trace_generation_alexnet", || {
        if matches!(t.next_instr(), dcl1_gpu::WavefrontInstr::Done) {
            t = AppTrace::new(spec, 0, 0);
        }
    });
}

fn bench_mshr() {
    use dcl1_cache::Mshr;
    let mut mshr: Mshr<u64> = Mshr::new(64, 8);
    let mut i = 0u64;
    bench("mshr_allocate_complete", || {
        i += 1;
        let line = LineAddr::new(i % 64);
        if mshr.try_allocate(black_box(line), i).is_err() || i.is_multiple_of(8) {
            black_box(mshr.complete(line));
        }
    });
}

fn bench_mshr_complete_into() {
    use dcl1_cache::Mshr;
    // The steady-state hot path: allocate + merge waiters, then drain a
    // fill through a caller-owned scratch buffer. After warm-up neither
    // the slab nor the scratch allocates.
    let mut mshr: Mshr<u64> = Mshr::new(64, 8);
    let mut scratch: Vec<u64> = Vec::new();
    let mut i = 0u64;
    bench("mshr_merge_complete_into", || {
        i += 1;
        let line = LineAddr::new(i % 32);
        let _ = mshr.try_allocate(black_box(line), i);
        let _ = mshr.try_allocate(line, i + 1); // merge on the same entry
        if i.is_multiple_of(4) {
            scratch.clear();
            black_box(mshr.complete_into(line, &mut scratch));
        }
    });
}

fn bench_flatmap() {
    use dcl1_common::FlatMap;
    // Insert/probe/remove churn over a clustered key range: the access
    // pattern the MSHR index and dirty-line set see.
    let mut map: FlatMap<u64> = FlatMap::with_capacity(4096);
    let mut i = 0u64;
    bench("flatmap_insert_probe_remove", || {
        i += 1;
        let key = i % 4096;
        map.insert(black_box(key), i);
        black_box(map.get(key));
        if i.is_multiple_of(2) {
            map.remove(key.wrapping_sub(7) % 4096);
        }
    });
}

fn bench_dram() {
    use dcl1_mem::{DramConfig, MemoryController};
    let mut mc: MemoryController<u32> = MemoryController::new(DramConfig::default());
    let mut i = 0u64;
    bench("dram_frfcfs_tick_loaded", || {
        i += 1;
        if mc.can_accept() {
            let _ = mc.try_enqueue(LineAddr::new(i * 17 % 4096), false, Some(i as u32));
        }
        mc.tick();
        while mc.pop_reply().is_some() {}
    });
}

fn bench_presence() {
    use dcl1::PresenceMap;
    let mut p = PresenceMap::new();
    let mut i = 0u64;
    bench("presence_fill_probe_evict", || {
        i += 1;
        let line = LineAddr::new(i % 10_000);
        p.on_fill(line);
        black_box(p.copies(line));
        if i.is_multiple_of(2) {
            p.on_evict(line);
        }
    });
}

fn bench_presence_mean() {
    use dcl1::PresenceMap;
    // `mean_replicas` runs every replica-sampling interval; with the
    // incrementally maintained aggregates it must be O(1) in the number
    // of resident lines, not a walk over them.
    let mut p = PresenceMap::with_capacity(10_000);
    for i in 0..10_000u64 {
        p.on_fill(LineAddr::new(i));
        if i.is_multiple_of(3) {
            p.on_fill(LineAddr::new(i)); // some replication
        }
    }
    bench("presence_mean_replicas_10k_lines", || {
        black_box(p.mean_replicas());
    });
}

fn bench_epoch_batch() {
    use dcl1_noc::{EpochBatch, EpochKey};
    // The epoch-barrier swap the sharded machine performs every cycle:
    // stage one flit per source in ascending key order (the common case —
    // seal is then a sortedness check, not a sort), inject the sealed
    // batch into a crossbar, and clear keeping the allocation.
    let mut x: Crossbar<u64> = Crossbar::new(CrossbarConfig::new(8, 4).unwrap());
    let mut batch: EpochBatch<Packet<u64>> = EpochBatch::with_capacity(8);
    let mut cycle = 0u64;
    bench("epoch_batch_stage_seal_inject", || {
        cycle += 1;
        for src in 0..8u64 {
            batch.stage(
                EpochKey { cycle, source: src, seq: cycle * 8 + src },
                Packet::new(src as usize, (src % 4) as usize, 2, src),
            );
        }
        batch.seal();
        x.inject_batch(&mut batch, |_, _| {});
        batch.clear();
        x.tick();
        for out in 0..4 {
            while x.pop_output(out).is_some() {}
        }
    });
}

fn bench_system_step() {
    let cfg = GpuConfig::default();
    let app = by_name("T-AlexNet").unwrap();
    let mut sys =
        GpuSystem::build(&cfg, &Design::flagship(&cfg), &app, SimOptions::default()).unwrap();
    bench("system_step_sh40c10boost_80core", || {
        sys.step();
    });
}

fn bench_system_step_sharded() {
    // Same machine partitioned into 4 execution domains with worker
    // threads off: measures the pure partitioning overhead (mailbox swap,
    // per-cluster regrouping, presence-log replay) against the sequential
    // figure above.
    let cfg = GpuConfig::default();
    let app = by_name("T-AlexNet").unwrap();
    let mut sys =
        GpuSystem::build(&cfg, &Design::flagship(&cfg), &app, SimOptions::default()).unwrap();
    sys.set_shards(4);
    sys.set_shard_threads(false);
    bench("system_step_sharded4_inline", || {
        sys.step();
    });
}

fn main() {
    println!("micro-component benchmarks (median of ~0.5s batched samples)\n");
    bench_cache();
    bench_crossbar();
    bench_crossbar_idle();
    bench_trace();
    bench_mshr();
    bench_mshr_complete_into();
    bench_flatmap();
    bench_dram();
    bench_presence();
    bench_presence_mean();
    bench_epoch_batch();
    bench_system_step();
    bench_system_step_sharded();
}
