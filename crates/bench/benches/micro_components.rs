//! Criterion micro-benchmarks for the simulator's hot components: cache
//! lookups, crossbar ticks, trace generation, and a short end-to-end
//! step loop. These guard the simulator's own performance (the figure
//! benches are wall-clock-bound by it).

use criterion::{criterion_group, criterion_main, Criterion};
use dcl1::{Design, GpuConfig, GpuSystem, SimOptions};
use dcl1_cache::{CacheGeometry, SetAssocCache};
use dcl1_common::LineAddr;
use dcl1_gpu::TraceSource;
use dcl1_noc::{Crossbar, CrossbarConfig, Packet};
use dcl1_workloads::{by_name, AppTrace};
use std::hint::black_box;

fn bench_cache(c: &mut Criterion) {
    let geom = CacheGeometry::new(16 * 1024, 4, 128).unwrap();
    c.bench_function("cache_lookup_fill_mix", |b| {
        let mut cache = SetAssocCache::new(geom);
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(0x9E37_79B9);
            let line = LineAddr::new(i % 4096);
            if cache.lookup(black_box(line)) == dcl1_cache::LookupResult::Miss {
                cache.fill(line);
            }
        });
    });
}

fn bench_crossbar(c: &mut Criterion) {
    c.bench_function("crossbar_8x4_saturated_tick", |b| {
        let mut x: Crossbar<u64> = Crossbar::new(CrossbarConfig::new(8, 4).unwrap());
        let mut n = 0u64;
        b.iter(|| {
            for src in 0..8 {
                if x.can_inject(src) {
                    n += 1;
                    let _ = x.try_inject(Packet::new(src, (n % 4) as usize, 32, n));
                }
            }
            x.tick();
            for out in 0..4 {
                while x.pop_output(out).is_some() {}
            }
        });
    });
}

fn bench_trace(c: &mut Criterion) {
    let spec = by_name("T-AlexNet").unwrap();
    c.bench_function("trace_generation_alexnet", |b| {
        let mut t = AppTrace::new(spec, 0, 0);
        b.iter(|| {
            if matches!(t.next_instr(), dcl1_gpu::WavefrontInstr::Done) {
                t = AppTrace::new(spec, 0, 0);
            }
        });
    });
}

fn bench_mshr(c: &mut Criterion) {
    use dcl1_cache::Mshr;
    c.bench_function("mshr_allocate_complete", |b| {
        let mut mshr: Mshr<u64> = Mshr::new(64, 8);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let line = LineAddr::new(i % 64);
            if mshr.try_allocate(black_box(line), i).is_err() || i % 8 == 0 {
                black_box(mshr.complete(line));
            }
        });
    });
}

fn bench_dram(c: &mut Criterion) {
    use dcl1_mem::{DramConfig, MemoryController};
    c.bench_function("dram_frfcfs_tick_loaded", |b| {
        let mut mc: MemoryController<u32> = MemoryController::new(DramConfig::default());
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            if mc.can_accept() {
                let _ = mc.try_enqueue(LineAddr::new(i * 17 % 4096), false, Some(i as u32));
            }
            mc.tick();
            while mc.pop_reply().is_some() {}
        });
    });
}

fn bench_presence(c: &mut Criterion) {
    use dcl1::PresenceMap;
    c.bench_function("presence_fill_probe_evict", |b| {
        let mut p = PresenceMap::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let line = LineAddr::new(i % 10_000);
            p.on_fill(line);
            black_box(p.copies(line));
            if i % 2 == 0 {
                p.on_evict(line);
            }
        });
    });
}

fn bench_system_step(c: &mut Criterion) {
    let cfg = GpuConfig::default();
    let app = by_name("T-AlexNet").unwrap();
    c.bench_function("system_step_sh40c10boost_80core", |b| {
        let mut sys = GpuSystem::build(
            &cfg,
            &Design::flagship(&cfg),
            &app,
            SimOptions::default(),
        )
        .unwrap();
        b.iter(|| sys.step());
    });
}

criterion_group!(
    benches,
    bench_cache,
    bench_crossbar,
    bench_trace,
    bench_mshr,
    bench_dram,
    bench_presence,
    bench_system_step
);
criterion_main!(benches);
