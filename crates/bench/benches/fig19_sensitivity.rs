//! Regenerates the paper's fig19_sensitivity results. Scale via DCL1_SCALE=full|quarter|smoke.
fn main() {
    let scale = dcl1_bench::Scale::from_env();
    let t0 = std::time::Instant::now();
    for table in dcl1_bench::experiments::fig19_sensitivity::run(scale) {
        println!("{table}");
    }
    eprintln!("[fig19_sensitivity] completed in {:.1?} at {scale:?} scale", t0.elapsed());
}
