//! Regenerates the paper's fig17_port_utilization results. Scale via DCL1_SCALE=full|quarter|smoke.
fn main() {
    let scale = dcl1_bench::Scale::from_env();
    let t0 = std::time::Instant::now();
    for table in dcl1_bench::experiments::fig17_port_utilization::run(scale) {
        println!("{table}");
    }
    eprintln!("[fig17_port_utilization] completed in {:.1?} at {scale:?} scale", t0.elapsed());
}
