//! Regenerates the paper's fig14_final results. Scale via DCL1_SCALE=full|quarter|smoke.
fn main() {
    let scale = dcl1_bench::Scale::from_env();
    let t0 = std::time::Instant::now();
    for table in dcl1_bench::experiments::fig14_final::run(scale) {
        println!("{table}");
    }
    eprintln!("[fig14_final_ipc] completed in {:.1?} at {scale:?} scale", t0.elapsed());
}
