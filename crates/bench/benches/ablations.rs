//! Ablation study of the reproduction's own modelling choices.
fn main() {
    let scale = dcl1_bench::Scale::from_env();
    for table in dcl1_bench::experiments::ablations::run(scale) {
        println!("{table}");
    }
}
