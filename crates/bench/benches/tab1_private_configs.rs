//! Regenerates the paper's tab1_private_configs results. Scale via DCL1_SCALE=full|quarter|smoke.
fn main() {
    let scale = dcl1_bench::Scale::from_env();
    let t0 = std::time::Instant::now();
    for table in dcl1_bench::experiments::tab1_private_configs::run(scale) {
        println!("{table}");
    }
    eprintln!("[tab1_private_configs] completed in {:.1?} at {scale:?} scale", t0.elapsed());
}
