//! Regenerates the paper's fig02_utilization results. Scale via DCL1_SCALE=full|quarter|smoke.
fn main() {
    let scale = dcl1_bench::Scale::from_env();
    let t0 = std::time::Instant::now();
    for table in dcl1_bench::experiments::fig02_utilization::run(scale) {
        println!("{table}");
    }
    eprintln!("[fig02_utilization] completed in {:.1?} at {scale:?} scale", t0.elapsed());
}
