//! Tiered content-addressed result store.
//!
//! One [`ResultStore`] facade over three tiers, looked up in order:
//!
//! 1. **mem** — sharded in-memory LRU with a byte budget ([`mem`]);
//!    zero-allocation hit path.
//! 2. **disk** — checksummed crash-safe local tier with 256-way fan-out,
//!    optional byte budget with LRU-by-mtime GC ([`disk`]).
//! 3. **shared** — an optional read-through tier on a shared mount
//!    (e.g. NFS), so a fleet of sweep hosts dedups computation across
//!    machines; write-back is configurable.
//!
//! A hit in a lower tier is promoted into every tier above it. Misses
//! fall through to the caller, which computes under per-key
//! [single-flight](flight) so N concurrent requests for the same key run
//! the computation once.
//!
//! The store is payload-agnostic: values cross the disk boundary through
//! a caller-supplied [`Codec`], so the serialized schema (and its
//! version discipline) stays with the caller. Keys are the caller's
//! 128-bit content hashes; the store never interprets them beyond
//! routing on the leading byte.

pub mod disk;
pub mod flight;
pub mod mem;

pub use disk::{Corruption, DiskLookup, DiskTier, DiskTierConfig};
pub use flight::{Flight, FlightGuard, SingleFlight};
pub use mem::{MemTier, MemTierStats};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Encodes values to / decodes values from the disk tiers' entry bodies.
/// `decode` returning `None` marks the entry corrupt (quarantined).
pub trait Codec<V>: Send + Sync + 'static {
    /// Serializes a value to an entry body.
    fn encode(&self, value: &V) -> String;
    /// Parses an entry body; `None` = malformed.
    fn decode(&self, body: &str) -> Option<V>;
}

/// How to open a [`ResultStore`].
pub struct StoreConfig {
    /// Byte budget for the in-memory LRU tier.
    pub mem_budget_bytes: u64,
    /// In-memory shard count (rounded up to a power of two).
    pub mem_shards: usize,
    /// The local disk tier; `None` = memory-only.
    pub disk: Option<DiskTierConfig>,
    /// The shared read-through tier.
    pub shared: Option<DiskTierConfig>,
    /// Whether locally computed results are written back to the shared
    /// tier (off = read-only consumer of the fleet cache).
    pub shared_writeback: bool,
}

/// Which tier served a hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitTier {
    /// In-memory LRU.
    Mem,
    /// Local disk.
    Disk,
    /// Shared read-through tier.
    Shared,
}

impl HitTier {
    /// Short name for progress events and reports.
    pub fn name(self) -> &'static str {
        match self {
            HitTier::Mem => "memo",
            HitTier::Disk => "disk",
            HitTier::Shared => "shared",
        }
    }
}

/// Result of [`ResultStore::lookup`]: the hit (if any) plus per-tier
/// probe latencies for the caller's histograms. `disk_nanos` /
/// `shared_nanos` are `None` when the tier was not probed (an earlier
/// tier hit, or the tier is not configured).
pub struct Lookup<V> {
    /// The value and the tier that served it.
    pub hit: Option<(Arc<V>, HitTier)>,
    /// Mem-tier probe wall time.
    pub mem_nanos: u64,
    /// Disk-tier probe wall time, if probed.
    pub disk_nanos: Option<u64>,
    /// Shared-tier probe wall time, if probed.
    pub shared_nanos: Option<u64>,
}

/// Accounting snapshot across all tiers.
#[derive(Debug, Clone, Copy, Default)]
pub struct StoreStats {
    /// Lookups served by the in-memory tier.
    pub mem_hits: u64,
    /// Lookups served by the local disk tier.
    pub disk_hits: u64,
    /// Lookups served by the shared tier.
    pub shared_hits: u64,
    /// Lookups that fell through every tier.
    pub misses: u64,
    /// In-memory entries evicted to stay under the byte budget.
    pub mem_evictions: u64,
    /// Disk entries evicted by the GC budget.
    pub disk_evictions: u64,
    /// Bytes held by the in-memory tier.
    pub mem_bytes: u64,
    /// Bytes held by the local disk tier.
    pub disk_bytes: u64,
    /// Live in-memory entries.
    pub mem_entries: u64,
    /// Threads that blocked behind another thread's computation.
    pub flight_waits: u64,
    /// Legacy flat-layout entries migrated into the fan-out at open.
    pub migrated_entries: u64,
}

/// The tiered store. See the [crate docs](self) for the design.
pub struct ResultStore<V> {
    codec: Box<dyn Codec<V>>,
    mem: MemTier<V>,
    disk: Option<DiskTier>,
    shared: Option<DiskTier>,
    shared_writeback: bool,
    flight: SingleFlight,
    mem_hits: AtomicU64,
    disk_hits: AtomicU64,
    shared_hits: AtomicU64,
    misses: AtomicU64,
}

/// Per-tier write timings from [`ResultStore::insert`]; `None` = the
/// tier was not written (unconfigured, or write-back off).
pub struct Fill {
    /// Local disk write wall time.
    pub disk_nanos: Option<u64>,
    /// Shared-tier write wall time.
    pub shared_nanos: Option<u64>,
}

/// Outcome of [`ResultStore::reload_disk`] — the chaos/corruption probe.
pub enum DiskReload<V> {
    /// No local-disk entry for the key.
    Missing,
    /// An intact entry.
    Ok(V),
    /// A corrupt entry, already quarantined.
    Corrupt(Corruption),
}

#[inline]
fn elapsed_nanos(t: Instant) -> u64 {
    u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

impl<V: Clone + Send + Sync + 'static> ResultStore<V> {
    /// Opens the store: builds the mem tier and opens (creating,
    /// migrating, purging) the configured disk tiers.
    pub fn open(cfg: &StoreConfig, codec: impl Codec<V>) -> ResultStore<V> {
        ResultStore {
            codec: Box::new(codec),
            mem: MemTier::new(cfg.mem_budget_bytes, cfg.mem_shards),
            disk: cfg.disk.as_ref().map(DiskTier::open),
            shared: cfg.shared.as_ref().map(DiskTier::open),
            shared_writeback: cfg.shared_writeback,
            flight: SingleFlight::new(),
            mem_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            shared_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Looks up `key` through mem → disk → shared, promoting hits into
    /// the tiers above. Corruption reports (already quarantined) are
    /// appended to `corruptions`; a corrupt entry degrades to a miss in
    /// that tier. The mem-tier hit path performs no allocations.
    pub fn lookup(&self, key: u128, corruptions: &mut Vec<Corruption>) -> Lookup<V> {
        let t_mem = Instant::now();
        let mem_hit = self.mem.get(key);
        let mem_nanos = elapsed_nanos(t_mem);
        if let Some(v) = mem_hit {
            self.mem_hits.fetch_add(1, Ordering::Relaxed);
            return Lookup { hit: Some((v, HitTier::Mem)), mem_nanos, disk_nanos: None, shared_nanos: None };
        }
        let mut disk_nanos = None;
        if let Some(disk) = &self.disk {
            let t = Instant::now();
            let outcome = self.decode_tier(disk, key, corruptions);
            disk_nanos = Some(elapsed_nanos(t));
            if let Some((value, body)) = outcome {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                let value = Arc::new(value);
                self.mem.insert(key, Arc::clone(&value), body.len() as u64);
                return Lookup {
                    hit: Some((value, HitTier::Disk)),
                    mem_nanos,
                    disk_nanos,
                    shared_nanos: None,
                };
            }
        }
        let mut shared_nanos = None;
        if let Some(shared) = &self.shared {
            let t = Instant::now();
            let outcome = self.decode_tier(shared, key, corruptions);
            shared_nanos = Some(elapsed_nanos(t));
            if let Some((value, body)) = outcome {
                self.shared_hits.fetch_add(1, Ordering::Relaxed);
                // Read-through promotion: the local tiers absorb the
                // entry so the next lookup never crosses the mount again.
                if let Some(disk) = &self.disk {
                    disk.store(key, &body);
                }
                let value = Arc::new(value);
                self.mem.insert(key, Arc::clone(&value), body.len() as u64);
                return Lookup {
                    hit: Some((value, HitTier::Shared)),
                    mem_nanos,
                    disk_nanos,
                    shared_nanos,
                };
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        Lookup { hit: None, mem_nanos, disk_nanos, shared_nanos }
    }

    /// Loads + decodes `key` from one disk tier, quarantining entries
    /// whose body does not decode even under a valid checksum.
    fn decode_tier(
        &self,
        tier: &DiskTier,
        key: u128,
        corruptions: &mut Vec<Corruption>,
    ) -> Option<(V, String)> {
        match tier.load(key) {
            DiskLookup::Hit(body) => match self.codec.decode(&body) {
                Some(v) => Some((v, body)),
                None => {
                    corruptions.push(
                        tier.quarantine(&tier.entry_path(key), "malformed body under valid checksum"),
                    );
                    None
                }
            },
            DiskLookup::Corrupt(c) => {
                corruptions.push(c);
                None
            }
            DiskLookup::Miss => None,
        }
    }

    /// Inserts a computed value into every tier (shared only when
    /// write-back is on), returning per-tier write timings.
    pub fn insert(&self, key: u128, value: &V) -> Fill {
        let body = self.codec.encode(value);
        let mut fill = Fill { disk_nanos: None, shared_nanos: None };
        if let Some(disk) = &self.disk {
            let t = Instant::now();
            disk.store(key, &body);
            fill.disk_nanos = Some(elapsed_nanos(t));
        }
        if self.shared_writeback {
            if let Some(shared) = &self.shared {
                let t = Instant::now();
                shared.store(key, &body);
                fill.shared_nanos = Some(elapsed_nanos(t));
            }
        }
        self.mem.insert(key, Arc::new(value.clone()), body.len() as u64);
        fill
    }

    /// Inserts into the in-memory tier only — journal resume uses this so
    /// replayed points do not rewrite (or re-publish) disk entries.
    pub fn insert_mem_only(&self, key: u128, value: &V) {
        let cost = self.codec.encode(value).len() as u64;
        self.mem.insert(key, Arc::new(value.clone()), cost);
    }

    /// Re-persists a value to the local disk tier only — the corruption
    /// recovery path re-stores the clean result it still holds.
    pub fn store_disk(&self, key: u128, value: &V) {
        if let Some(disk) = &self.disk {
            disk.store(key, &self.codec.encode(value));
        }
    }

    /// Reads `key` straight from the local disk tier, bypassing (and not
    /// refilling) the mem tier — chaos uses this to prove a just-written
    /// entry survives, or that a damaged one is rejected and quarantined.
    pub fn reload_disk(&self, key: u128, corruptions: &mut Vec<Corruption>) -> DiskReload<V> {
        let Some(disk) = &self.disk else { return DiskReload::Missing };
        let before = corruptions.len();
        match self.decode_tier(disk, key, corruptions) {
            Some((v, _)) => DiskReload::Ok(v),
            None if corruptions.len() > before => {
                DiskReload::Corrupt(corruptions[corruptions.len() - 1].clone())
            }
            None => DiskReload::Missing,
        }
    }

    /// The canonical local-disk path for `key` (chaos scribbles here).
    pub fn disk_entry_path(&self, key: u128) -> Option<std::path::PathBuf> {
        self.disk.as_ref().map(|d| d.entry_path(key))
    }

    /// The canonical shared-tier path for `key` — `None` when no shared
    /// tier is configured. Chaos targets this alongside the local path so
    /// corruption drills cover the cross-host read path too.
    pub fn shared_entry_path(&self, key: u128) -> Option<std::path::PathBuf> {
        self.shared.as_ref().map(|d| d.entry_path(key))
    }

    /// Claims `key` for computation or waits for the current leader; see
    /// [`SingleFlight::begin`].
    pub fn begin_flight(&self, key: u128) -> Flight<'_> {
        self.flight.begin(key)
    }

    /// Accounting snapshot across all tiers.
    pub fn stats(&self) -> StoreStats {
        let mem = self.mem.stats();
        StoreStats {
            mem_hits: self.mem_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            shared_hits: self.shared_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            mem_evictions: mem.evictions,
            disk_evictions: self.disk.as_ref().map(DiskTier::evictions).unwrap_or(0),
            mem_bytes: mem.bytes,
            disk_bytes: self.disk.as_ref().map(DiskTier::bytes).unwrap_or(0),
            mem_entries: mem.entries,
            flight_waits: self.flight.waits(),
            migrated_entries: self.disk.as_ref().map(DiskTier::migrated).unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    struct U64Codec;
    impl Codec<u64> for U64Codec {
        fn encode(&self, v: &u64) -> String {
            format!("value {v}\n")
        }
        fn decode(&self, body: &str) -> Option<u64> {
            body.strip_prefix("value ")?.trim_end().parse().ok()
        }
    }

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dcl1-store-lib-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn disk_cfg(root: PathBuf) -> DiskTierConfig {
        DiskTierConfig { root, budget_bytes: None, migrate_flat: true, purge_stale_siblings: true }
    }

    fn store_at(dir: &std::path::Path, shared: Option<PathBuf>) -> ResultStore<u64> {
        ResultStore::open(
            &StoreConfig {
                mem_budget_bytes: 1 << 20,
                mem_shards: 4,
                disk: Some(disk_cfg(dir.join("v3"))),
                shared: shared.map(disk_cfg),
                shared_writeback: true,
            },
            U64Codec,
        )
    }

    #[test]
    fn tiers_promote_upward() {
        let dir = scratch("promote");
        let mut corr = Vec::new();
        {
            let a = store_at(&dir, None);
            a.insert(7, &700);
            assert!(matches!(a.lookup(7, &mut corr).hit, Some((_, HitTier::Mem))));
        }
        // A fresh store (new process) has a cold mem tier: first lookup is
        // a disk hit, the next a mem hit via promotion.
        let b = store_at(&dir, None);
        let first = b.lookup(7, &mut corr);
        match first.hit {
            Some((v, HitTier::Disk)) => assert_eq!(*v, 700),
            _ => panic!("cold store must hit disk"),
        }
        assert!(first.disk_nanos.is_some());
        assert!(matches!(b.lookup(7, &mut corr).hit, Some((_, HitTier::Mem))));
        let s = b.stats();
        assert_eq!((s.disk_hits, s.mem_hits, s.misses), (1, 1, 0));
        assert!(corr.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shared_tier_read_through_and_writeback() {
        let host_a = scratch("shared-a");
        let host_b = scratch("shared-b");
        let shared = scratch("shared-dir");
        let mut corr = Vec::new();

        let a = store_at(&host_a, Some(shared.join("v3")));
        a.insert(9, &900); // write-back publishes to the shared tier
        let b = store_at(&host_b, Some(shared.join("v3")));
        let hit = b.lookup(9, &mut corr);
        match hit.hit {
            Some((v, HitTier::Shared)) => assert_eq!(*v, 900),
            _ => panic!("host B must be served by the shared tier"),
        }
        // Promotion localized the entry: B's next cold-mem lookup would be
        // a local disk hit; here the mem tier already has it.
        assert!(matches!(b.lookup(9, &mut corr).hit, Some((_, HitTier::Mem))));
        assert!(b.disk_entry_path(9).unwrap().exists(), "read-through must fill local disk");
        assert_eq!(b.stats().shared_hits, 1);
        for d in [host_a, host_b, shared] {
            let _ = std::fs::remove_dir_all(&d);
        }
    }

    #[test]
    fn single_flight_stress_computes_each_key_once() {
        let dir = scratch("flight-stress");
        let store = store_at(&dir, None);
        let computed = AtomicU64::new(0);
        const THREADS: usize = 8;
        const KEYS: u128 = 5;
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for key in 0..KEYS {
                        let want = u64::try_from(key).unwrap() * 10;
                        let mut corr = Vec::new();
                        let got = loop {
                            if let Some((v, _)) = store.lookup(key, &mut corr).hit {
                                break *v;
                            }
                            match store.begin_flight(key) {
                                Flight::Leader(_guard) => {
                                    // Leadership re-check: a prior leader may
                                    // have filled the store between our miss
                                    // and our claim.
                                    if let Some((v, _)) = store.lookup(key, &mut corr).hit {
                                        break *v;
                                    }
                                    computed.fetch_add(1, Ordering::Relaxed);
                                    store.insert(key, &want);
                                    break want;
                                }
                                Flight::Waited => {}
                            }
                        };
                        assert_eq!(got, want);
                    }
                });
            }
        });
        assert_eq!(
            computed.load(Ordering::Relaxed),
            u64::try_from(KEYS).unwrap(),
            "every key must be computed exactly once across {THREADS} threads"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_shared_entry_is_quarantined_and_recomputed() {
        let host_a = scratch("shcorr-a");
        let host_b = scratch("shcorr-b");
        let host_c = scratch("shcorr-c");
        let shared = scratch("shcorr-dir");

        let a = store_at(&host_a, Some(shared.join("v3")));
        a.insert(5, &500);
        // Scribble the shared copy so its checksum no longer matches.
        let entry = shared.join("v3").join("00").join(format!("{:032x}.stats", 5u128));
        let mut bytes = std::fs::read(&entry).expect("shared entry written back");
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&entry, &bytes).unwrap();

        let b = store_at(&host_b, Some(shared.join("v3")));
        let mut corr = Vec::new();
        assert!(
            b.lookup(5, &mut corr).hit.is_none(),
            "a corrupt shared entry must degrade to a miss, not be served"
        );
        assert_eq!(corr.len(), 1);
        assert!(!entry.exists(), "corrupt entry must leave the shared lookup path");
        assert_eq!(
            shared.join("v3").join("quarantine").read_dir().map(Iterator::count).unwrap_or(0),
            1,
            "corrupt shared entry must be quarantined for post-mortem"
        );

        // The recompute + write-back publishes a clean copy for the fleet.
        b.insert(5, &500);
        let c = store_at(&host_c, Some(shared.join("v3")));
        let mut corr = Vec::new();
        match c.lookup(5, &mut corr).hit {
            Some((v, HitTier::Shared)) => assert_eq!(*v, 500),
            _ => panic!("republished entry must serve a third host from the shared tier"),
        }
        for d in [host_a, host_b, host_c, shared] {
            let _ = std::fs::remove_dir_all(&d);
        }
    }

    #[test]
    fn undecodable_body_is_quarantined_not_served() {
        let dir = scratch("decode");
        let a = store_at(&dir, None);
        a.insert(5, &500);
        // Rewrite the entry with a valid checksum over garbage the codec
        // cannot parse: the checksum passes, decode fails, quarantine.
        let path = a.disk_entry_path(5).unwrap();
        let body = "not a value\n";
        std::fs::write(
            &path,
            format!("checksum {}\n{body}", dcl1_common::checksum::fnv64_hex(body.as_bytes())),
        )
        .unwrap();
        let b = store_at(&dir, None);
        let mut corr = Vec::new();
        assert!(b.lookup(5, &mut corr).hit.is_none());
        assert_eq!(corr.len(), 1);
        assert!(corr[0].reason.contains("malformed body"));
        assert!(!path.exists(), "undecodable entry must leave the lookup path");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
