//! Checksummed crash-safe disk tier with 256-way fan-out.
//!
//! Entries live under `root/<XX>/<key:032x>.stats`, where `<XX>` is the
//! leading byte of the 128-bit FNV key in hex — the same byte that picks
//! the in-memory shard. Fan-out keeps directory listings small at fleet
//! scale (a flat directory with 10^6 entries makes every create/rename a
//! linear scan on most filesystems) and gives the GC pass 256 naturally
//! sorted buckets to walk.
//!
//! The on-disk format is unchanged from the flat-directory era: a
//! `checksum <16 hex FNV-64>` header line covering the serialized body,
//! written to a private temp file and published by atomic rename. Corrupt
//! entries (bad header, bad checksum, undecodable body) are moved to
//! `root/quarantine/` so they can never satisfy another lookup while the
//! evidence survives for inspection.
//!
//! Opening a tier migrates any legacy flat-layout entries into the
//! fan-out (rename, not copy) and deletes stale sibling schema
//! directories (`v1`, `v2`, …). An optional byte budget triggers a GC
//! pass on overflow: entries are evicted oldest-mtime-first with a
//! name-sorted tie-break, so two caches with equal timestamps GC in the
//! same order. Reads touch the entry's mtime (best-effort), making the
//! policy LRU rather than FIFO.

use dcl1_common::checksum;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::SystemTime;

/// A corrupt-entry report: the tier has already moved the entry aside.
#[derive(Debug, Clone)]
pub struct Corruption {
    /// Path the corrupt entry was found at.
    pub path: String,
    /// Why it was rejected.
    pub reason: String,
}

/// Outcome of a disk lookup.
pub enum DiskLookup {
    /// No entry for the key.
    Miss,
    /// An intact entry's body (checksum verified, header stripped).
    Hit(String),
    /// A corrupt entry, already quarantined.
    Corrupt(Corruption),
}

/// How to open a [`DiskTier`].
#[derive(Debug, Clone)]
pub struct DiskTierConfig {
    /// The schema-versioned cache directory (e.g. `…/dcl1-cache/v3`).
    pub root: PathBuf,
    /// Evict oldest entries past this many bytes; `None` = unbounded.
    pub budget_bytes: Option<u64>,
    /// Move legacy flat-layout `*.stats` files into the fan-out on open.
    pub migrate_flat: bool,
    /// Delete stale sibling schema directories (`v<N>` ≠ this root) on
    /// open. Off for shared tiers: other hosts may still run an older
    /// schema, and their directories are not ours to collect.
    pub purge_stale_siblings: bool,
}

/// Distinguishes concurrent writers' temp files *within* one process;
/// combined with the PID this makes temp names unique across the whole
/// machine, so two threads (or two hosts on a shared tier) never clobber
/// each other's in-flight temp file.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// One disk tier (local or shared). All I/O is best-effort: a failing
/// filesystem degrades the tier to misses, never the caller.
pub struct DiskTier {
    root: PathBuf,
    budget: Option<u64>,
    bytes: AtomicU64,
    evictions: AtomicU64,
    migrated: u64,
    /// Serializes GC passes; concurrent stores still proceed.
    gc_lock: Mutex<()>,
}

/// Whether `name` is a fan-out bucket: exactly two lowercase hex chars.
fn is_bucket_name(name: &str) -> bool {
    name.len() == 2 && name.bytes().all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase())
}

/// Whether `name` is an entry file name: `<32 hex>.stats`.
fn is_entry_name(name: &str) -> bool {
    name.len() == 38
        && name.ends_with(".stats")
        && name.as_bytes()[..32].iter().all(u8::is_ascii_hexdigit)
}

/// Whether `name` is a schema directory name: `v<digits>`.
fn is_schema_dir_name(name: &str) -> bool {
    name.len() >= 2
        && name.starts_with('v')
        && name.as_bytes()[1..].iter().all(u8::is_ascii_digit)
}

impl DiskTier {
    /// Opens (creating, migrating, and purging as configured) a tier.
    /// Never fails: filesystem errors leave an empty tier that misses.
    pub fn open(cfg: &DiskTierConfig) -> DiskTier {
        let _ = std::fs::create_dir_all(&cfg.root);
        if cfg.purge_stale_siblings {
            purge_stale_siblings(&cfg.root);
        }
        let migrated = if cfg.migrate_flat { migrate_flat(&cfg.root) } else { 0 };
        let tier = DiskTier {
            root: cfg.root.clone(),
            budget: cfg.budget_bytes,
            bytes: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            migrated,
            gc_lock: Mutex::new(()),
        };
        let initial: u64 = tier.walk_entries().iter().map(|e| e.len).sum();
        tier.bytes.store(initial, Ordering::Relaxed);
        tier.maybe_gc();
        tier
    }

    /// The tier's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Bytes of entries held (maintained incrementally; exact after GC).
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Entries evicted by GC since open.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Legacy flat-layout entries renamed into the fan-out at open.
    pub fn migrated(&self) -> u64 {
        self.migrated
    }

    /// The canonical entry path for `key`.
    pub fn entry_path(&self, key: u128) -> PathBuf {
        let name = format!("{key:032x}.stats");
        self.root.join(&name[..2]).join(&name)
    }

    /// Looks up `key`, verifying the checksum header. A hit refreshes the
    /// entry's mtime (best-effort) so the GC policy is LRU, not FIFO.
    pub fn load(&self, key: u128) -> DiskLookup {
        let path = self.entry_path(key);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return DiskLookup::Miss,
            Err(e) => {
                return DiskLookup::Corrupt(
                    self.quarantine(&path, &format!("unreadable: {e}")),
                );
            }
        };
        let Some(rest) = text.strip_prefix("checksum ") else {
            // The headerless pre-checksum format is no longer readable;
            // the flat→fan-out migration was the flag day for it.
            return DiskLookup::Corrupt(self.quarantine(&path, "missing checksum header"));
        };
        let Some((digest, body)) = rest.split_once('\n') else {
            return DiskLookup::Corrupt(self.quarantine(&path, "truncated checksum header"));
        };
        if !checksum::verify_hex(body.as_bytes(), digest) {
            return DiskLookup::Corrupt(self.quarantine(&path, "checksum mismatch"));
        }
        if let Ok(f) = std::fs::File::options().read(true).open(&path) {
            let _ = f.set_modified(SystemTime::now());
        }
        DiskLookup::Hit(body.to_string())
    }

    /// Persists `body` for `key`: checksum header + temp file + atomic
    /// rename, then a GC pass if the write pushed the tier over budget.
    pub fn store(&self, key: u128, body: &str) {
        let path = self.entry_path(key);
        let Some(bucket) = path.parent() else { return };
        if std::fs::create_dir_all(bucket).is_err() {
            return;
        }
        let entry = format!("checksum {}\n{body}", checksum::fnv64_hex(body.as_bytes()));
        let tmp = bucket.join(format!(
            "{key:032x}.tmp.{}.{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        if std::fs::write(&tmp, &entry).is_ok() && std::fs::rename(&tmp, &path).is_ok() {
            self.bytes.fetch_add(entry.len() as u64, Ordering::Relaxed);
            self.maybe_gc();
        } else {
            let _ = std::fs::remove_file(&tmp);
        }
    }

    /// Moves a bad entry into `root/quarantine/` (falling back to
    /// deletion) and returns the report for the recovery log.
    pub fn quarantine(&self, path: &Path, reason: &str) -> Corruption {
        let len = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        let mut moved = false;
        if let Some(name) = path.file_name() {
            let qdir = self.root.join("quarantine");
            if std::fs::create_dir_all(&qdir).is_ok() {
                moved = std::fs::rename(path, qdir.join(name)).is_ok();
            }
        }
        if !moved {
            let _ = std::fs::remove_file(path);
        }
        // Saturating: the walk that seeded `bytes` may postdate this file.
        let _ = self.bytes.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| {
            Some(b.saturating_sub(len))
        });
        Corruption { path: path.display().to_string(), reason: reason.to_string() }
    }

    /// Every live entry, bucket-by-bucket. Bucket and file names are
    /// sorted so the walk order is deterministic.
    fn walk_entries(&self) -> Vec<EntryMeta> {
        let mut out = Vec::new();
        let Ok(dir) = std::fs::read_dir(&self.root) else { return out };
        let mut buckets: Vec<PathBuf> = dir
            .flatten()
            .filter(|e| {
                e.file_name().to_str().is_some_and(is_bucket_name)
                    && e.file_type().map(|t| t.is_dir()).unwrap_or(false)
            })
            .map(|e| e.path())
            .collect();
        buckets.sort();
        for bucket in buckets {
            let Ok(files) = std::fs::read_dir(&bucket) else { continue };
            for f in files.flatten() {
                let name = f.file_name();
                let Some(name) = name.to_str() else { continue };
                if !is_entry_name(name) {
                    continue;
                }
                let Ok(meta) = f.metadata() else { continue };
                let mtime = meta
                    .modified()
                    .ok()
                    .and_then(|t| t.duration_since(SystemTime::UNIX_EPOCH).ok())
                    .map(|d| d.as_nanos())
                    .unwrap_or(0);
                out.push(EntryMeta {
                    path: f.path(),
                    name: name.to_string(),
                    mtime,
                    len: meta.len(),
                });
            }
        }
        out
    }

    /// Runs GC if a budget is set and the running byte total exceeds it.
    fn maybe_gc(&self) {
        let Some(budget) = self.budget else { return };
        if self.bytes.load(Ordering::Relaxed) > budget {
            self.gc(budget);
        }
    }

    /// Evicts entries oldest-mtime-first (name-sorted tie-break) until
    /// the tier is at or under `budget`. The walk recomputes the byte
    /// total, so the incremental counter is re-anchored to truth here.
    fn gc(&self, budget: u64) {
        let _guard = self.gc_lock.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut entries = self.walk_entries();
        let mut total: u64 = entries.iter().map(|e| e.len).sum();
        entries.sort_by(|a, b| a.mtime.cmp(&b.mtime).then_with(|| a.name.cmp(&b.name)));
        for e in &entries {
            if total <= budget {
                break;
            }
            if std::fs::remove_file(&e.path).is_ok() {
                total -= e.len;
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.bytes.store(total, Ordering::Relaxed);
    }
}

struct EntryMeta {
    path: PathBuf,
    name: String,
    mtime: u128,
    len: u64,
}

/// Renames legacy flat-layout entries (`root/<key>.stats`) into their
/// fan-out buckets. Returns how many moved. Rename, not copy: the flag
/// day costs one directory operation per entry, no data I/O.
fn migrate_flat(root: &Path) -> u64 {
    let Ok(dir) = std::fs::read_dir(root) else { return 0 };
    let mut moved = 0u64;
    for e in dir.flatten() {
        let name = e.file_name();
        let Some(name) = name.to_str() else { continue };
        if !is_entry_name(name) || !e.file_type().map(|t| t.is_file()).unwrap_or(false) {
            continue;
        }
        let bucket = root.join(&name[..2]);
        if std::fs::create_dir_all(&bucket).is_ok()
            && std::fs::rename(e.path(), bucket.join(name)).is_ok()
        {
            moved += 1;
        }
    }
    moved
}

/// Deletes sibling schema directories (`v<N>`) other than `root` itself —
/// entries under a stale schema can never be read again, so they are pure
/// disk leak.
fn purge_stale_siblings(root: &Path) {
    let Some(active) = root.file_name().and_then(|n| n.to_str()) else { return };
    let Some(parent) = root.parent() else { return };
    let Ok(dir) = std::fs::read_dir(parent) else { return };
    for e in dir.flatten() {
        let name = e.file_name();
        let Some(name) = name.to_str() else { continue };
        if name != active
            && is_schema_dir_name(name)
            && e.file_type().map(|t| t.is_dir()).unwrap_or(false)
        {
            let _ = std::fs::remove_dir_all(e.path());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dcl1-store-disk-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn open(root: PathBuf, budget: Option<u64>) -> DiskTier {
        DiskTier::open(&DiskTierConfig {
            root,
            budget_bytes: budget,
            migrate_flat: true,
            purge_stale_siblings: true,
        })
    }

    #[test]
    fn store_load_roundtrip_lands_in_fanout_bucket() {
        let root = scratch("roundtrip");
        let tier = open(root.clone(), None);
        let key = 0xab00_0000_0000_0000_0000_0000_0000_0001u128;
        tier.store(key, "cycles 1\n");
        assert!(root.join("ab").join(format!("{key:032x}.stats")).exists());
        match tier.load(key) {
            DiskLookup::Hit(body) => assert_eq!(body, "cycles 1\n"),
            _ => panic!("intact entry must hit"),
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_and_headerless_entries_are_quarantined() {
        let root = scratch("corrupt");
        let tier = open(root.clone(), None);
        let key = 0x0100_0000_0000_0000_0000_0000_0000_0002u128;
        tier.store(key, "cycles 2\n");
        let path = tier.entry_path(key);
        std::fs::write(&path, "checksum 0000000000000000\ncycles 2\n").unwrap();
        match tier.load(key) {
            DiskLookup::Corrupt(c) => assert!(c.reason.contains("checksum mismatch")),
            _ => panic!("scribbled entry must be rejected"),
        }
        assert!(!path.exists());
        assert!(root.join("quarantine").join(format!("{key:032x}.stats")).exists());

        // The pre-checksum headerless format is dead: reject + quarantine.
        tier.store(key, "cycles 2\n");
        std::fs::write(&path, "cycles 2\n").unwrap();
        match tier.load(key) {
            DiskLookup::Corrupt(c) => assert!(c.reason.contains("missing checksum header")),
            _ => panic!("headerless entry must be rejected"),
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn open_migrates_flat_entries_and_purges_stale_schemas() {
        let base = scratch("migrate");
        let root = base.join("v3");
        std::fs::create_dir_all(&root).unwrap();
        // A legacy flat entry, exactly as the pre-fan-out code wrote it.
        let key = 0xcd00_0000_0000_0000_0000_0000_0000_0003u128;
        let body = "cycles 3\n";
        let entry = format!("checksum {}\n{body}", checksum::fnv64_hex(body.as_bytes()));
        std::fs::write(root.join(format!("{key:032x}.stats")), entry).unwrap();
        // Stale sibling schema dirs.
        std::fs::create_dir_all(base.join("v1")).unwrap();
        std::fs::create_dir_all(base.join("v2")).unwrap();

        let tier = open(root.clone(), None);
        assert_eq!(tier.migrated(), 1);
        assert!(root.join("cd").join(format!("{key:032x}.stats")).exists());
        assert!(!root.join(format!("{key:032x}.stats")).exists(), "renamed, not copied");
        match tier.load(key) {
            DiskLookup::Hit(b) => assert_eq!(b, body),
            _ => panic!("migrated entry must hit"),
        }
        assert!(!base.join("v1").exists(), "stale v1 must be deleted");
        assert!(!base.join("v2").exists(), "stale v2 must be deleted");
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn gc_respects_budget_boundary_with_name_sorted_ties() {
        let root = scratch("gc");
        let tier = open(root.clone(), None);
        // Three entries, identical mtimes (same instant is likely; force
        // it to make the tie-break the thing under test).
        let keys = [0x01u128, 0x02u128, 0x03u128];
        for k in keys {
            tier.store(k, "body\n");
        }
        let stamp = SystemTime::UNIX_EPOCH + std::time::Duration::from_secs(1_000_000);
        for k in keys {
            let f = std::fs::File::options().read(true).open(tier.entry_path(k)).unwrap();
            f.set_times(std::fs::FileTimes::new().set_modified(stamp)).unwrap();
        }
        let entry_len = std::fs::metadata(tier.entry_path(keys[0])).unwrap().len();

        // Exactly at budget: nothing may be evicted.
        let at = open(root.clone(), Some(entry_len * 3));
        assert_eq!(at.evictions(), 0, "at-budget tier must not evict");
        assert_eq!(at.bytes(), entry_len * 3);

        // One byte under the total: evict exactly the name-smallest entry.
        let over = open(root.clone(), Some(entry_len * 3 - 1));
        assert_eq!(over.evictions(), 1);
        assert!(!over.entry_path(keys[0]).exists(), "name-sorted tie evicts …01 first");
        assert!(over.entry_path(keys[1]).exists());
        assert!(over.entry_path(keys[2]).exists());
        assert_eq!(over.bytes(), entry_len * 2);
        let _ = std::fs::remove_dir_all(&root);
    }
}
