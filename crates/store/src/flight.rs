//! Per-key single-flight: when N threads want the same uncomputed key,
//! exactly one (the *leader*) computes it while the rest block until the
//! leader publishes the result, then re-read the tiers. Without this, a
//! cold parallel sweep whose work list contains duplicate points (or a
//! `dcl1d`-style job API receiving the same query twice) simulates the
//! same configuration N times.
//!
//! The design deliberately avoids `catch_unwind` (forbidden outside the
//! resilience crate): the leader holds a [`FlightGuard`] whose `Drop`
//! wakes every waiter, so a panicking leader still releases the key and a
//! surviving waiter re-checks the tiers, finds nothing, and becomes the
//! new leader. Waiters therefore must treat "woken" as "re-check", not
//! "result is ready".

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// One in-flight computation. `done` flips to true exactly once, when the
/// leader's guard drops (normally or during unwind).
struct FlightSlot {
    done: Mutex<bool>,
    cv: Condvar,
}

/// Registry of in-flight keys. `BTreeMap` (not a hash map) keeps the
/// structure deterministic per the workspace `hash_order` rule; the map
/// only ever holds the handful of keys currently being computed.
pub struct SingleFlight {
    inflight: Mutex<BTreeMap<u128, Arc<FlightSlot>>>,
    waits: AtomicU64,
}

/// Outcome of [`SingleFlight::begin`].
pub enum Flight<'a> {
    /// This thread owns the computation for the key; drop the guard (or
    /// let it fall out of scope) once the result is published.
    Leader(FlightGuard<'a>),
    /// Another thread was already computing the key and has since
    /// finished (or died); re-check the tiers before retrying.
    Waited,
}

/// Leadership token. Dropping it — including during a panic unwind —
/// removes the key from the in-flight map and wakes every waiter.
pub struct FlightGuard<'a> {
    owner: &'a SingleFlight,
    key: u128,
}

/// A poisoned lock here only means some thread panicked mid-update; the
/// protected state (a bool / a map of Arcs) cannot be left half-written,
/// so recovering the guard is always safe and keeps the single-flight
/// machinery usable during unwinds.
fn relock<'a, T>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(PoisonError::into_inner)
}

impl SingleFlight {
    /// Creates an empty registry.
    pub fn new() -> Self {
        SingleFlight { inflight: Mutex::new(BTreeMap::new()), waits: AtomicU64::new(0) }
    }

    /// Claims `key` or waits for the current leader to finish.
    pub fn begin(&self, key: u128) -> Flight<'_> {
        let slot = {
            let mut map = relock(self.inflight.lock());
            match map.get(&key) {
                Some(slot) => Arc::clone(slot),
                None => {
                    map.insert(key, Arc::new(FlightSlot { done: Mutex::new(false), cv: Condvar::new() }));
                    return Flight::Leader(FlightGuard { owner: self, key });
                }
            }
        };
        self.waits.fetch_add(1, Ordering::Relaxed);
        let mut done = relock(slot.done.lock());
        while !*done {
            done = relock(slot.cv.wait(done));
        }
        Flight::Waited
    }

    /// Number of times a thread blocked behind another's computation.
    pub fn waits(&self) -> u64 {
        self.waits.load(Ordering::Relaxed)
    }
}

impl Default for SingleFlight {
    fn default() -> Self {
        SingleFlight::new()
    }
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        let slot = relock(self.owner.inflight.lock()).remove(&self.key);
        if let Some(slot) = slot {
            *relock(slot.done.lock()) = true;
            slot.cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn second_caller_waits_for_leader() {
        let sf = Arc::new(SingleFlight::new());
        let computed = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let sf = Arc::clone(&sf);
                let computed = Arc::clone(&computed);
                s.spawn(move || {
                    if let Flight::Leader(_g) = sf.begin(42) {
                        computed.fetch_add(1, Ordering::SeqCst);
                        std::thread::sleep(std::time::Duration::from_millis(20));
                    }
                });
            }
        });
        assert_eq!(computed.load(Ordering::SeqCst), 1, "exactly one leader may compute");
        assert_eq!(sf.waits(), 7);
    }

    #[test]
    fn panicking_leader_releases_the_key() {
        let sf = SingleFlight::new();
        let res = std::thread::scope(|s| {
            s.spawn(|| {
                let _g = match sf.begin(7) {
                    Flight::Leader(g) => g,
                    Flight::Waited => panic!("fresh key must elect a leader"),
                };
                panic!("leader dies mid-compute");
            })
            .join()
        });
        assert!(res.is_err(), "leader thread panicked by design");
        assert!(
            matches!(sf.begin(7), Flight::Leader(_)),
            "key must be claimable after the leader unwound"
        );
    }
}
