//! Sharded in-memory LRU tier with a byte budget.
//!
//! Replaces the old global `BTreeMap`-behind-a-mutex memo: the table is
//! split into power-of-two shards (selected by the leading byte of the
//! 128-bit FNV key, the same byte that names the disk fan-out directory),
//! and each shard is an intrusive doubly-linked LRU list threaded through
//! a slab, indexed by a deterministic [`FlatMap`]. The hit path —
//! index probe, full-key verify, list unlink/relink, `Arc` clone — does
//! zero allocations in steady state (the alloc-probe `store_mem_hit`
//! probe enforces this); only inserting a *new* entry may grow the slab
//! or re-hash the index.
//!
//! Keys are folded from `u128` to `u64` for the index; the slab slot
//! stores the full key and every probe verifies it, so a fold collision
//! can never return the wrong value — the colliding entry is simply
//! evicted (a ~2^-64 event that costs one recompute).
//!
//! Eviction pops from the list tail (least recently used) until the
//! shard is back under its share of the byte budget. Order is a pure
//! function of the operation sequence — no clocks, no hasher seeds — so
//! the model-vs-impl property test can replay any op tape.

use dcl1_common::flat::FlatMap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Sentinel slot index for list ends / empty lists.
const NIL: u32 = u32::MAX;

/// Folds a 128-bit key into the 64-bit index domain. Collisions are
/// resolved by the full-key check on the slot (see module docs).
#[inline]
#[expect(clippy::cast_possible_truncation)] // xor-fold of both halves is the point
fn fold(key: u128) -> u64 {
    (key as u64) ^ ((key >> 64) as u64)
}

struct Slot<V> {
    key: u128,
    value: Arc<V>,
    cost: u64,
    prev: u32,
    next: u32,
}

struct Shard<V> {
    /// folded key → slab slot. One live slot per folded key.
    index: FlatMap<u32>,
    slots: Vec<Option<Slot<V>>>,
    free: Vec<u32>,
    /// Most recently used slot, or `NIL`.
    head: u32,
    /// Least recently used slot, or `NIL`.
    tail: u32,
    bytes: u64,
    budget: u64,
    evictions: u64,
}

impl<V> Shard<V> {
    fn unlink(&mut self, i: u32) {
        let (prev, next) = {
            let s = self.slots[i as usize].as_ref().expect("unlink of live slot");
            (s.prev, s.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.slots[p as usize].as_mut().expect("prev slot is live").next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n as usize].as_mut().expect("next slot is live").prev = prev,
        }
    }

    fn push_front(&mut self, i: u32) {
        let old_head = self.head;
        {
            let s = self.slots[i as usize].as_mut().expect("push of live slot");
            s.prev = NIL;
            s.next = old_head;
        }
        if old_head != NIL {
            self.slots[old_head as usize].as_mut().expect("head slot is live").prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Frees slot `i` (already unlinked), dropping its value.
    fn release(&mut self, i: u32) {
        let slot = self.slots[i as usize].take().expect("release of live slot");
        self.index.remove(fold(slot.key));
        self.bytes -= slot.cost;
        self.free.push(i);
    }

    /// Evicts from the tail until the shard is within budget.
    fn evict_to_budget(&mut self) {
        while self.bytes > self.budget {
            let victim = self.tail;
            if victim == NIL {
                break;
            }
            self.unlink(victim);
            self.release(victim);
            self.evictions += 1;
        }
    }
}

/// The in-memory tier. See the module docs for the design.
pub struct MemTier<V> {
    shards: Vec<Mutex<Shard<V>>>,
    /// `shards.len() - 1`; shard count is a power of two.
    mask: usize,
}

/// Aggregated mem-tier accounting (summed over shards under their locks).
#[derive(Debug, Clone, Copy, Default)]
pub struct MemTierStats {
    /// Live entries across all shards.
    pub entries: u64,
    /// Bytes of encoded payload held.
    pub bytes: u64,
    /// Entries evicted to stay under the byte budget.
    pub evictions: u64,
}

fn relock<'a, T>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    // A shard poisoned by a panicking thread still satisfies the list
    // invariants (every mutation completes before the lock drops), so
    // recovery is safe and keeps the cache usable during supervised
    // retries.
    r.unwrap_or_else(PoisonError::into_inner)
}

impl<V> MemTier<V> {
    /// Creates a tier with `budget_bytes` split evenly across
    /// `shard_count` shards (rounded up to a power of two, min 1).
    pub fn new(budget_bytes: u64, shard_count: usize) -> Self {
        let n = shard_count.next_power_of_two().max(1);
        let per_shard = budget_bytes / n as u64;
        let shards = (0..n)
            .map(|_| {
                Mutex::new(Shard {
                    index: FlatMap::with_capacity(256),
                    slots: Vec::new(),
                    free: Vec::new(),
                    head: NIL,
                    tail: NIL,
                    bytes: 0,
                    budget: per_shard,
                    evictions: 0,
                })
            })
            .collect();
        MemTier { shards, mask: n - 1 }
    }

    #[inline]
    fn shard(&self, key: u128) -> &Mutex<Shard<V>> {
        // The leading byte also names the disk fan-out subdirectory, so a
        // shard maps onto a contiguous slice of the on-disk layout.
        let idx = ((key >> 120) as usize) & self.mask;
        &self.shards[idx]
    }

    /// Looks up `key`, promoting it to most-recently-used on a hit.
    /// Allocation-free.
    pub fn get(&self, key: u128) -> Option<Arc<V>> {
        let mut shard = relock(self.shard(key).lock());
        let i = *shard.index.get(fold(key))?;
        let slot = shard.slots[i as usize].as_ref().expect("indexed slot is live");
        if slot.key != key {
            return None; // fold collision with a different live key
        }
        let value = Arc::clone(&slot.value);
        if shard.head != i {
            shard.unlink(i);
            shard.push_front(i);
        }
        Some(value)
    }

    /// Inserts `key` → `value` at most-recently-used, charging
    /// `cost` bytes, then evicts from the tail as needed. An existing
    /// entry under the same folded key (same key, or a fold collision) is
    /// replaced.
    pub fn insert(&self, key: u128, value: Arc<V>, cost: u64) {
        let mut shard = relock(self.shard(key).lock());
        if let Some(&i) = shard.index.get(fold(key)) {
            shard.unlink(i);
            shard.release(i);
        }
        let i = match shard.free.pop() {
            Some(i) => i,
            None => {
                shard.slots.push(None);
                u32::try_from(shard.slots.len() - 1).expect("mem tier slab stays under 2^32 slots")
            }
        };
        shard.slots[i as usize] = Some(Slot { key, value, cost, prev: NIL, next: NIL });
        shard.index.insert(fold(key), i);
        shard.bytes += cost;
        shard.push_front(i);
        shard.evict_to_budget();
    }

    /// Accounting snapshot, summed over shards.
    pub fn stats(&self) -> MemTierStats {
        let mut out = MemTierStats::default();
        for shard in &self.shards {
            let s = relock(shard.lock());
            out.entries += s.index.len() as u64;
            out.bytes += s.bytes;
            out.evictions += s.evictions;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_promotes_and_eviction_pops_lru() {
        let tier: MemTier<u64> = MemTier::new(30, 1);
        tier.insert(1, Arc::new(10), 10);
        tier.insert(2, Arc::new(20), 10);
        tier.insert(3, Arc::new(30), 10);
        assert_eq!(tier.get(1).as_deref(), Some(&10)); // 1 becomes MRU; LRU is 2
        tier.insert(4, Arc::new(40), 10);
        assert_eq!(tier.get(2), None, "LRU entry must be the one evicted");
        assert_eq!(tier.get(1).as_deref(), Some(&10));
        let s = tier.stats();
        assert_eq!((s.entries, s.bytes, s.evictions), (3, 30, 1));
    }

    #[test]
    fn replacing_a_key_updates_cost_without_leaking() {
        let tier: MemTier<u64> = MemTier::new(100, 1);
        tier.insert(5, Arc::new(1), 40);
        tier.insert(5, Arc::new(2), 60);
        let s = tier.stats();
        assert_eq!((s.entries, s.bytes), (1, 60));
        assert_eq!(tier.get(5).as_deref(), Some(&2));
    }

    #[test]
    fn oversized_entry_evicts_itself() {
        let tier: MemTier<u64> = MemTier::new(8, 1);
        tier.insert(9, Arc::new(1), 64);
        assert_eq!(tier.get(9), None);
        assert_eq!(tier.stats().bytes, 0);
    }

    /// Reference LRU: a recency-ordered `Vec` (front = MRU) plus a
    /// `BTreeMap` of costs. Deliberately naive — O(n) everywhere — so its
    /// correctness is obvious by inspection.
    struct ModelLru {
        recency: Vec<u128>,
        cost: std::collections::BTreeMap<u128, u64>,
        budget: u64,
        evictions: u64,
    }

    impl ModelLru {
        fn new(budget: u64) -> Self {
            ModelLru { recency: Vec::new(), cost: std::collections::BTreeMap::new(), budget, evictions: 0 }
        }

        fn bytes(&self) -> u64 {
            self.cost.values().sum()
        }

        fn get(&mut self, key: u128) -> bool {
            if let Some(pos) = self.recency.iter().position(|&k| k == key) {
                let k = self.recency.remove(pos);
                self.recency.insert(0, k);
                true
            } else {
                false
            }
        }

        fn insert(&mut self, key: u128, cost: u64) {
            if self.cost.remove(&key).is_some() {
                let pos = self.recency.iter().position(|&k| k == key).expect("model in sync");
                self.recency.remove(pos);
            }
            self.cost.insert(key, cost);
            self.recency.insert(0, key);
            while self.bytes() > self.budget {
                let victim = self.recency.pop().expect("over budget implies non-empty");
                self.cost.remove(&victim).expect("model in sync");
                self.evictions += 1;
            }
        }
    }

    #[test]
    fn lru_matches_reference_model_over_random_op_tapes() {
        use dcl1_common::rng::SplitMix64;
        // Single shard so the model's global recency order is the impl's.
        // Small key space (collision-free under fold) and a tight budget
        // force constant eviction, replacement, and slab slot reuse.
        for seed in 0..8u64 {
            let mut rng = SplitMix64::new(0xC0FF_EE00 + seed);
            let budget = 50 + (rng.next_u64() % 100);
            let tier: MemTier<u64> = MemTier::new(budget, 1);
            let mut model = ModelLru::new(budget);
            for step in 0..2_000 {
                let key = u128::from(rng.next_u64() % 24);
                if rng.next_u64().is_multiple_of(3) {
                    let cost = 1 + (rng.next_u64() % 40);
                    tier.insert(key, Arc::new(u64::try_from(key).expect("small key")), cost);
                    model.insert(key, cost);
                } else {
                    let impl_hit = tier.get(key).is_some();
                    let model_hit = model.get(key);
                    assert_eq!(
                        impl_hit, model_hit,
                        "seed {seed} step {step}: get({key}) diverged from the model"
                    );
                }
                let s = tier.stats();
                assert_eq!(
                    (s.entries, s.bytes, s.evictions),
                    (model.recency.len() as u64, model.bytes(), model.evictions),
                    "seed {seed} step {step}: accounting diverged from the model"
                );
            }
        }
    }

    #[test]
    fn fold_collision_returns_none_not_wrong_value() {
        // keys differing only in upper/lower halves that fold identically:
        // fold(a) == fold(b) when lo(a)^hi(a) == lo(b)^hi(b).
        let a: u128 = 0x5;
        let b: u128 = 0x5 << 64; // hi=5, lo=0 → fold 5 as well
        assert_eq!(super::fold(a), super::fold(b));
        let tier: MemTier<u64> = MemTier::new(1000, 1);
        tier.insert(a, Arc::new(111), 10);
        assert_eq!(tier.get(b), None, "colliding key must miss, never alias");
        tier.insert(b, Arc::new(222), 10);
        assert_eq!(tier.get(b).as_deref(), Some(&222));
        assert_eq!(tier.get(a), None, "collision replaces the old entry");
    }
}
