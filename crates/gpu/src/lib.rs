//! SIMT GPU core model.
//!
//! A [`Core`] hosts up to 48 wavefront contexts fed by [`TraceSource`]s
//! (instruction streams produced by the `dcl1-workloads` crate or by
//! tests). Each cycle a core issues at most one wavefront instruction,
//! selected greedy-round-robin over ready wavefronts — enough fidelity to
//! reproduce the latency-hiding behaviour the paper's arguments rest on:
//! a core with many ready wavefronts tolerates long memory latency, a core
//! with few (or with most wavefronts blocked on memory) does not.
//!
//! Memory instructions carry pre-coalesced per-line accesses (see
//! [`coalesce`]); the core blocks the issuing wavefront until every access
//! of the instruction completes, which the enclosing simulator signals via
//! [`Core::complete_access`].
//!
//! Cooperative thread arrays (CTAs) are dispatched by a [`CtaDispatcher`]
//! in either greedy round-robin order (GPGPU-Sim's default) or the
//! block-distributed order the paper uses as its CTA-scheduler sensitivity
//! study (Section VIII-A).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod coalesce;
mod core_model;
mod cta;
mod instr;
pub mod metrics;
mod trace;
mod wavefront;

pub use coalesce::coalesce;
pub use core_model::{Core, CoreConfig, CoreStats, IssuePolicy, IssuedMem, MemBlock, StallBreakdown};
pub use cta::{CtaDispatcher, CtaPolicy};
pub use instr::{MemAccess, MemInstr, MemKind, WavefrontInstr};
pub use trace::{TraceFactory, TraceSource, VecTrace};
pub use wavefront::{Wavefront, WavefrontState};
