//! CTA (cooperative thread array) dispatch.
//!
//! GPGPU-Sim's default scheduler deals CTAs to cores greedily in issue
//! order — effectively round-robin under uniform CTA lengths, with natural
//! imbalance when CTA lengths differ (the paper's R-SC observation). The
//! *distributed* policy of the paper's sensitivity study instead gives
//! each core a contiguous block of CTA ids, mapping nearby CTAs to the
//! same core, which improves intra-core locality and reduces cross-core
//! replication.

use dcl1_common::CoreId;

/// CTA-to-core assignment policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CtaPolicy {
    /// Hand out the next CTA id to whichever core asks first.
    GreedyRoundRobin,
    /// Pre-partition CTA ids into contiguous per-core blocks.
    DistributedBlocks,
}

/// Dispenses CTA ids to cores on demand.
#[derive(Debug, Clone)]
pub struct CtaDispatcher {
    policy: CtaPolicy,
    total: u32,
    cores: usize,
    next_global: u32,
    /// Per-core cursor and block end for the distributed policy.
    blocks: Vec<(u32, u32)>,
}

impl CtaDispatcher {
    /// Creates a dispatcher for `total` CTAs over `cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    // Core counts are two-digit configuration values.
    #[expect(clippy::cast_possible_truncation)]
    pub fn new(policy: CtaPolicy, total: u32, cores: usize) -> Self {
        assert!(cores > 0, "core count must be nonzero");
        let per = total.div_ceil(cores as u32);
        let blocks = (0..cores as u32)
            .map(|c| (per * c, (per * (c + 1)).min(total)))
            .collect();
        CtaDispatcher { policy, total, cores, next_global: 0, blocks }
    }

    /// Fetches the next CTA for `core`, or `None` if this core has no more
    /// work under the active policy.
    pub fn fetch(&mut self, core: CoreId) -> Option<u32> {
        match self.policy {
            CtaPolicy::GreedyRoundRobin => {
                if self.next_global < self.total {
                    let id = self.next_global;
                    self.next_global += 1;
                    Some(id)
                } else {
                    None
                }
            }
            CtaPolicy::DistributedBlocks => {
                let (cursor, end) = &mut self.blocks[core.index() % self.cores];
                if cursor < end {
                    let id = *cursor;
                    *cursor += 1;
                    Some(id)
                } else {
                    None
                }
            }
        }
    }

    /// CTAs not yet dispatched.
    pub fn remaining(&self) -> u32 {
        match self.policy {
            CtaPolicy::GreedyRoundRobin => self.total - self.next_global,
            CtaPolicy::DistributedBlocks => {
                self.blocks.iter().map(|(c, e)| e - c).sum()
            }
        }
    }

    /// Total CTAs in the grid.
    pub fn total(&self) -> u32 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_hands_out_in_order() {
        let mut d = CtaDispatcher::new(CtaPolicy::GreedyRoundRobin, 5, 2);
        assert_eq!(d.fetch(CoreId::new(0)), Some(0));
        assert_eq!(d.fetch(CoreId::new(1)), Some(1));
        assert_eq!(d.fetch(CoreId::new(0)), Some(2));
        assert_eq!(d.remaining(), 2);
        assert_eq!(d.fetch(CoreId::new(1)), Some(3));
        assert_eq!(d.fetch(CoreId::new(1)), Some(4));
        assert_eq!(d.fetch(CoreId::new(0)), None);
    }

    #[test]
    fn distributed_gives_contiguous_blocks() {
        let mut d = CtaDispatcher::new(CtaPolicy::DistributedBlocks, 8, 2);
        assert_eq!(d.fetch(CoreId::new(0)), Some(0));
        assert_eq!(d.fetch(CoreId::new(0)), Some(1));
        assert_eq!(d.fetch(CoreId::new(1)), Some(4));
        assert_eq!(d.fetch(CoreId::new(1)), Some(5));
        assert_eq!(d.remaining(), 4);
    }

    #[test]
    fn distributed_handles_uneven_totals() {
        let mut d = CtaDispatcher::new(CtaPolicy::DistributedBlocks, 5, 2);
        // Blocks: core0 = [0,3), core1 = [3,5).
        let mut all = Vec::new();
        while let Some(c) = d.fetch(CoreId::new(0)) {
            all.push(c);
        }
        while let Some(c) = d.fetch(CoreId::new(1)) {
            all.push(c);
        }
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
        assert_eq!(d.remaining(), 0);
    }

    #[test]
    fn exhausted_core_in_distributed_gets_none_despite_global_work() {
        let mut d = CtaDispatcher::new(CtaPolicy::DistributedBlocks, 4, 4);
        assert_eq!(d.fetch(CoreId::new(0)), Some(0));
        assert_eq!(d.fetch(CoreId::new(0)), None, "block exhausted");
        assert_eq!(d.remaining(), 3);
    }
}
