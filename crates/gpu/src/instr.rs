//! Wavefront-level instructions.

use dcl1_common::LineAddr;

/// What a memory instruction does to the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemKind {
    /// Global load: served by the (DC-)L1.
    Load,
    /// Global store: write-evict at the L1, write-through to the L2.
    Store,
    /// Atomic: bypasses the (DC-)L1, executed at the L2/MC (paper §III).
    Atomic,
    /// Non-L1 fetch (instruction / texture / constant miss): bypasses the
    /// DC-L1 cache (Q1→Q3 in paper Fig 3) and is served by the L2.
    Aux,
}

impl MemKind {
    /// Whether this access skips the (DC-)L1 cache array.
    pub fn bypasses_l1(self) -> bool {
        matches!(self, MemKind::Atomic | MemKind::Aux)
    }
}

/// One coalesced memory transaction: a line and the bytes actually needed
/// from it (the DC-L1 returns only these bytes to the core, paper §III).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Target cache line.
    pub line: LineAddr,
    /// Bytes of the line the wavefront actually reads/writes (32..=128).
    pub bytes: u32,
}

/// A memory instruction after coalescing: one or more line transactions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemInstr {
    /// Access kind.
    pub kind: MemKind,
    /// Coalesced per-line transactions (nonempty).
    pub accesses: Vec<MemAccess>,
}

/// One instruction from a wavefront's trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WavefrontInstr {
    /// Arithmetic work occupying the wavefront for `latency` cycles after
    /// issue (the issue slot itself is one cycle).
    Alu {
        /// Cycles until the wavefront is ready again.
        latency: u32,
    },
    /// A memory instruction; the wavefront blocks until all its accesses
    /// complete.
    Mem(MemInstr),
    /// End of the wavefront's work.
    Done,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bypass_classification() {
        assert!(!MemKind::Load.bypasses_l1());
        assert!(!MemKind::Store.bypasses_l1());
        assert!(MemKind::Atomic.bypasses_l1());
        assert!(MemKind::Aux.bypasses_l1());
    }
}
