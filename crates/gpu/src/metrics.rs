//! `gpu.*` registry namespace: core-side issue and stall counters.
//!
//! Pull model: the simulator calls [`GpuMetrics::record`] at epoch
//! boundaries with the cores' already-maintained [`CoreStats`]; nothing
//! here touches the issue hot path. Summation walks cores in the order
//! the caller supplies them — global core order in the machine — so the
//! snapshot is independent of the shard partition.

use crate::CoreStats;
use dcl1_obs::registry::{CounterId, Registry};

/// Registered ids for every `gpu.*` metric.
#[derive(Debug, Clone, Copy)]
pub struct GpuMetrics {
    instructions: CounterId,
    mem_instructions: CounterId,
    idle_cycles: CounterId,
    mem_stall_cycles: CounterId,
    stall_drained: CounterId,
    stall_alu_busy: CounterId,
    stall_fill_wait: CounterId,
    stall_mem_outbox: CounterId,
    stall_mem_l1_queue: CounterId,
    stall_mem_noc: CounterId,
}

impl GpuMetrics {
    /// Registers the `gpu.*` namespace.
    pub fn register(reg: &mut Registry) -> GpuMetrics {
        GpuMetrics {
            instructions: reg.counter("gpu.instructions"),
            mem_instructions: reg.counter("gpu.mem_instructions"),
            idle_cycles: reg.counter("gpu.idle_cycles"),
            mem_stall_cycles: reg.counter("gpu.mem_stall_cycles"),
            stall_drained: reg.counter("gpu.stall_drained"),
            stall_alu_busy: reg.counter("gpu.stall_alu_busy"),
            stall_fill_wait: reg.counter("gpu.stall_fill_wait"),
            stall_mem_outbox: reg.counter("gpu.stall_mem_outbox"),
            stall_mem_l1_queue: reg.counter("gpu.stall_mem_l1_queue"),
            stall_mem_noc: reg.counter("gpu.stall_mem_noc"),
        }
    }

    /// Snapshots the sum over `cores` (callers supply global core order).
    pub fn record(self, reg: &mut Registry, cores: impl Iterator<Item = CoreStats>) {
        let mut instructions = 0;
        let mut mem_instructions = 0;
        let mut idle = 0;
        let mut mem_stall = 0;
        let mut drained = 0;
        let mut alu_busy = 0;
        let mut fill_wait = 0;
        let mut mem_outbox = 0;
        let mut mem_l1_queue = 0;
        let mut mem_noc = 0;
        for c in cores {
            instructions += c.instructions.get();
            mem_instructions += c.mem_instructions.get();
            idle += c.idle_cycles.get();
            mem_stall += c.mem_stall_cycles.get();
            drained += c.stall.drained.get();
            alu_busy += c.stall.alu_busy.get();
            fill_wait += c.stall.fill_wait.get();
            mem_outbox += c.stall.mem_outbox.get();
            mem_l1_queue += c.stall.mem_l1_queue.get();
            mem_noc += c.stall.mem_noc.get();
        }
        reg.set_counter(self.instructions, instructions);
        reg.set_counter(self.mem_instructions, mem_instructions);
        reg.set_counter(self.idle_cycles, idle);
        reg.set_counter(self.mem_stall_cycles, mem_stall);
        reg.set_counter(self.stall_drained, drained);
        reg.set_counter(self.stall_alu_busy, alu_busy);
        reg.set_counter(self.stall_fill_wait, fill_wait);
        reg.set_counter(self.stall_mem_outbox, mem_outbox);
        reg.set_counter(self.stall_mem_l1_queue, mem_l1_queue);
        reg.set_counter(self.stall_mem_noc, mem_noc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_summed_core_stats() {
        let mut reg = Registry::new();
        let ids = GpuMetrics::register(&mut reg);
        let mut a = CoreStats::default();
        a.instructions.add(10);
        a.idle_cycles.add(3);
        a.stall.fill_wait.add(2);
        let mut b = CoreStats::default();
        b.instructions.add(5);
        b.mem_instructions.add(4);
        ids.record(&mut reg, [a, b].into_iter());
        assert_eq!(reg.get("gpu.instructions"), Some(15));
        assert_eq!(reg.get("gpu.mem_instructions"), Some(4));
        assert_eq!(reg.get("gpu.idle_cycles"), Some(3));
        assert_eq!(reg.get("gpu.stall_fill_wait"), Some(2));
        // Re-recording overwrites (snapshot semantics, not accumulation).
        ids.record(&mut reg, [a].into_iter());
        assert_eq!(reg.get("gpu.instructions"), Some(10));
    }
}
