//! Memory-access coalescing.
//!
//! A 32-lane wavefront issues up to 32 per-lane byte addresses; the
//! coalescer merges them into per-line transactions, counting how many
//! distinct 32 B sectors of each line are touched. A fully coalesced
//! unit-stride float access becomes one 128 B transaction; a scattered
//! access degenerates into up to 32 separate transactions — exactly the
//! behaviour that differentiates regular (P-GEMM-like) from irregular
//! (C-BFS-like) workloads.

use crate::instr::MemAccess;
use dcl1_common::addr::{Address, SECTOR_SIZE};
use dcl1_common::LineAddr;

/// Coalesces per-lane addresses into per-line transactions.
///
/// The returned accesses are ordered by first appearance; `bytes` is the
/// number of distinct sectors touched × 32.
///
/// # Examples
///
/// ```
/// use dcl1_gpu::coalesce;
/// use dcl1_common::addr::Address;
///
/// // 32 lanes × 4 B, unit stride: one 128 B transaction.
/// let addrs: Vec<Address> = (0..32).map(|i| Address::new(i * 4)).collect();
/// let txns = coalesce(&addrs);
/// assert_eq!(txns.len(), 1);
/// assert_eq!(txns[0].bytes, 128);
/// ```
// SECTOR_SIZE (32) and a 4-bit sector mask both fit u32.
#[expect(clippy::cast_possible_truncation)]
pub fn coalesce(addrs: &[Address]) -> Vec<MemAccess> {
    let mut order: Vec<LineAddr> = Vec::new();
    let mut sectors: Vec<u8> = Vec::new(); // bitmask of touched sectors per line
    for &a in addrs {
        let line = a.line();
        let bit = 1u8 << a.sector();
        match order.iter().position(|&l| l == line) {
            Some(i) => sectors[i] |= bit,
            None => {
                order.push(line);
                sectors.push(bit);
            }
        }
    }
    order
        .into_iter()
        .zip(sectors)
        .map(|(line, mask)| MemAccess {
            line,
            bytes: mask.count_ones() * SECTOR_SIZE as u32,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcl1_common::addr::LINE_SIZE;

    #[test]
    fn unit_stride_coalesces_to_one_line() {
        let addrs: Vec<Address> = (0..32).map(|i| Address::new(i * 4)).collect();
        let t = coalesce(&addrs);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].bytes, 128);
    }

    #[test]
    fn partial_line_counts_touched_sectors_only() {
        // 8 lanes × 4 B in the first sector only.
        let addrs: Vec<Address> = (0..8).map(|i| Address::new(i * 4)).collect();
        let t = coalesce(&addrs);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].bytes, 32);
    }

    #[test]
    fn stride_two_lines() {
        // 32 lanes × 8 B stride: touches two consecutive lines fully.
        let addrs: Vec<Address> = (0..32).map(|i| Address::new(i * 8)).collect();
        let t = coalesce(&addrs);
        assert_eq!(t.len(), 2);
        assert!(t.iter().all(|a| a.bytes == 128));
    }

    #[test]
    fn scattered_access_explodes() {
        // Each lane on its own line.
        let addrs: Vec<Address> =
            (0..32).map(|i| Address::new(i * LINE_SIZE as u64 * 3)).collect();
        let t = coalesce(&addrs);
        assert_eq!(t.len(), 32);
        assert!(t.iter().all(|a| a.bytes == 32));
    }

    #[test]
    fn duplicate_lanes_merge() {
        let addrs = vec![Address::new(0), Address::new(0), Address::new(4)];
        let t = coalesce(&addrs);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].bytes, 32);
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(coalesce(&[]).is_empty());
    }

    #[test]
    fn order_is_first_appearance() {
        let addrs = vec![
            Address::new(5 * LINE_SIZE as u64),
            Address::new(0),
            Address::new(5 * LINE_SIZE as u64 + 64),
        ];
        let t = coalesce(&addrs);
        assert_eq!(t[0].line, LineAddr::new(5));
        assert_eq!(t[1].line, LineAddr::new(0));
        assert_eq!(t[0].bytes, 64);
    }
}
