//! Instruction-stream sources.

use crate::instr::WavefrontInstr;
use std::fmt;

/// A stream of wavefront instructions.
///
/// Implementations must be infinite-safe: after yielding
/// [`WavefrontInstr::Done`] they keep yielding it.
pub trait TraceSource: fmt::Debug + Send {
    /// Produces the next instruction of this wavefront.
    fn next_instr(&mut self) -> WavefrontInstr;
}

/// The factory a workload exposes: one trace per (CTA, wavefront) pair.
///
/// The same `(cta, wf)` pair must always produce an identical stream, so a
/// kernel behaves the same no matter which core the CTA lands on — CTA
/// *placement* (the CTA scheduler) is what changes locality, exactly as in
/// the paper's sensitivity study.
pub trait TraceFactory: fmt::Debug + Sync {
    /// Creates the instruction stream of wavefront `wf` of CTA `cta`.
    fn wavefront_trace(&self, cta: u32, wf: u32) -> Box<dyn TraceSource>;
    /// Total CTAs in the grid.
    fn total_ctas(&self) -> u32;
    /// Wavefronts per CTA.
    fn wavefronts_per_cta(&self) -> u32;
}

/// A trace backed by a vector of instructions (tests and examples).
#[derive(Debug, Clone)]
pub struct VecTrace {
    instrs: std::vec::IntoIter<WavefrontInstr>,
}

impl VecTrace {
    /// Creates a trace that yields `instrs` then `Done` forever.
    pub fn new(instrs: Vec<WavefrontInstr>) -> Self {
        VecTrace { instrs: instrs.into_iter() }
    }
}

impl TraceSource for VecTrace {
    fn next_instr(&mut self) -> WavefrontInstr {
        self.instrs.next().unwrap_or(WavefrontInstr::Done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_trace_yields_then_done_forever() {
        let mut t = VecTrace::new(vec![WavefrontInstr::Alu { latency: 1 }]);
        assert_eq!(t.next_instr(), WavefrontInstr::Alu { latency: 1 });
        assert_eq!(t.next_instr(), WavefrontInstr::Done);
        assert_eq!(t.next_instr(), WavefrontInstr::Done);
    }
}
