//! A single wavefront (warp) context.

use crate::instr::WavefrontInstr;
use crate::trace::TraceSource;
use dcl1_common::Cycle;

/// Scheduling state of a wavefront.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WavefrontState {
    /// Can issue its next instruction.
    Ready,
    /// Executing an ALU instruction until the given cycle.
    Busy {
        /// Core cycle at which the wavefront becomes ready again.
        until: Cycle,
    },
    /// Blocked on memory with this many accesses outstanding.
    WaitingMem {
        /// Transactions still in flight.
        outstanding: u32,
    },
    /// The trace is exhausted.
    Finished,
}

/// One wavefront: a trace plus scheduling state.
#[derive(Debug)]
pub struct Wavefront {
    trace: Box<dyn TraceSource>,
    state: WavefrontState,
    /// The next instruction, pre-fetched so the scheduler can peek.
    next: Option<WavefrontInstr>,
}

impl Wavefront {
    /// Creates a ready wavefront over `trace`.
    pub fn new(trace: Box<dyn TraceSource>) -> Self {
        Wavefront { trace, state: WavefrontState::Ready, next: None }
    }

    /// Current state, resolving `Busy` expiry against `now`.
    pub fn state(&mut self, now: Cycle) -> WavefrontState {
        if let WavefrontState::Busy { until } = self.state {
            if now >= until {
                self.state = WavefrontState::Ready;
            }
        }
        self.state
    }

    /// Peeks the next instruction without consuming it.
    pub fn peek(&mut self) -> &WavefrontInstr {
        if self.next.is_none() {
            self.next = Some(self.trace.next_instr());
        }
        self.next.as_ref().expect("just filled")
    }

    /// Consumes the peeked instruction.
    ///
    /// # Panics
    ///
    /// Panics if nothing was peeked (internal contract of the core issue
    /// logic).
    pub fn take(&mut self) -> WavefrontInstr {
        self.next.take().expect("take() without peek()")
    }

    /// Marks the wavefront busy until `until`.
    pub fn set_busy(&mut self, until: Cycle) {
        self.state = WavefrontState::Busy { until };
    }

    /// Marks the wavefront blocked on `outstanding` memory transactions.
    pub fn set_waiting(&mut self, outstanding: u32) {
        debug_assert!(outstanding > 0);
        self.state = WavefrontState::WaitingMem { outstanding };
    }

    /// Marks the wavefront finished.
    pub fn set_finished(&mut self) {
        self.state = WavefrontState::Finished;
    }

    /// Whether the wavefront is blocked on memory. A non-resolving query
    /// (unlike [`state`](Wavefront::state), never mutates `Busy` expiry),
    /// so schedulers can use it for bookkeeping checks.
    pub fn is_waiting_mem(&self) -> bool {
        matches!(self.state, WavefrontState::WaitingMem { .. })
    }

    /// Signals completion of one outstanding memory transaction.
    ///
    /// Returns `true` if the wavefront became ready.
    ///
    /// # Panics
    ///
    /// Panics if the wavefront was not waiting on memory.
    pub fn complete_access(&mut self) -> bool {
        match &mut self.state {
            WavefrontState::WaitingMem { outstanding } => {
                *outstanding -= 1;
                if *outstanding == 0 {
                    self.state = WavefrontState::Ready;
                    true
                } else {
                    false
                }
            }
            other => panic!("complete_access on non-waiting wavefront ({other:?})"),
        }
    }

    /// Whether the wavefront has retired all work.
    pub fn is_finished(&self) -> bool {
        self.state == WavefrontState::Finished
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{MemAccess, MemInstr, MemKind};
    use crate::trace::VecTrace;
    use dcl1_common::LineAddr;

    fn mem(n: usize) -> WavefrontInstr {
        WavefrontInstr::Mem(MemInstr {
            kind: MemKind::Load,
            accesses: (0..n).map(|i| MemAccess { line: LineAddr::new(i as u64), bytes: 32 }).collect(),
        })
    }

    #[test]
    fn busy_expires_with_time() {
        let mut wf = Wavefront::new(Box::new(VecTrace::new(vec![])));
        wf.set_busy(5);
        assert_eq!(wf.state(4), WavefrontState::Busy { until: 5 });
        assert_eq!(wf.state(5), WavefrontState::Ready);
    }

    #[test]
    fn waiting_mem_counts_down() {
        let mut wf = Wavefront::new(Box::new(VecTrace::new(vec![mem(2)])));
        wf.set_waiting(2);
        assert!(!wf.complete_access());
        assert!(wf.complete_access());
        assert_eq!(wf.state(0), WavefrontState::Ready);
    }

    #[test]
    #[should_panic(expected = "non-waiting")]
    fn complete_on_ready_panics() {
        let mut wf = Wavefront::new(Box::new(VecTrace::new(vec![])));
        wf.complete_access();
    }

    #[test]
    fn peek_take_round_trip() {
        let mut wf = Wavefront::new(Box::new(VecTrace::new(vec![mem(1)])));
        assert!(matches!(wf.peek(), WavefrontInstr::Mem(_)));
        assert!(matches!(wf.take(), WavefrontInstr::Mem(_)));
        assert!(matches!(wf.peek(), WavefrontInstr::Done));
    }
}
