//! A GPU core (compute unit).
//!
//! In the baseline each core owns a private L1; in the paper's designs the
//! same core becomes a **lite core** — no L1 data cache, no MSHRs — and
//! every memory instruction leaves through NoC#1. Both variants share this
//! model: the distinction lives entirely in where the enclosing simulator
//! routes [`IssuedMem`] transactions, which is the point of the paper's
//! decoupling.

use crate::instr::{MemInstr, WavefrontInstr};
use crate::trace::TraceSource;
use crate::wavefront::{Wavefront, WavefrontState};
use dcl1_common::stats::Counter;
use dcl1_common::{CoreId, Cycle, WavefrontId};

/// Wavefront issue-selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub enum IssuePolicy {
    /// Greedy round-robin: resume scanning after the last issuer.
    #[default]
    GreedyRoundRobin,
    /// Greedy-then-oldest (GPGPU-Sim's default "GTO"): keep issuing from
    /// the same wavefront while it is ready, otherwise pick the oldest
    /// ready wavefront. Concentrates locality in few wavefronts.
    GreedyThenOldest,
}

/// Static configuration of a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// Maximum resident wavefronts (paper Table II: 48).
    pub max_wavefronts: usize,
    /// Maximum concurrently resident CTAs.
    pub max_ctas: usize,
    /// Wavefront selection policy.
    pub issue_policy: IssuePolicy,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            max_wavefronts: 48,
            max_ctas: 6,
            issue_policy: IssuePolicy::GreedyRoundRobin,
        }
    }
}

/// Why a core's memory port refused an instruction this cycle.
///
/// Reported by the enclosing simulator (which owns the port) so the core
/// can attribute the stall to the right structural resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemBlock {
    /// The per-core outbox still holds transactions from an earlier
    /// instruction (port busy draining).
    OutboxDrain,
    /// The outbox head could not enter the local L1 input queue.
    L1Queue,
    /// The outbox head could not inject into the network.
    Noc,
}

/// Classification of every non-issuing core cycle.
///
/// Exhaustive by construction: each core tick that issues nothing lands in
/// exactly one bucket, so `total()` equals `idle_cycles + mem_stall_cycles`
/// and, together with `instructions`, accounts for every elapsed cycle.
#[derive(Debug, Clone, Copy, Default)]
pub struct StallBreakdown {
    /// No wavefronts resident (core drained or not yet dispatched to).
    pub drained: Counter,
    /// Wavefronts resident but all ALU-busy (or finished), none waiting
    /// on memory.
    pub alu_busy: Counter,
    /// At least one wavefront blocked waiting for a memory reply.
    pub fill_wait: Counter,
    /// A memory instruction was ready but the outbox was still draining.
    pub mem_outbox: Counter,
    /// A memory instruction was ready but the L1 input queue was full.
    pub mem_l1_queue: Counter,
    /// A memory instruction was ready but NoC injection was backpressured.
    pub mem_noc: Counter,
}

impl StallBreakdown {
    /// Total classified non-issue cycles.
    pub fn total(&self) -> u64 {
        self.drained.get()
            + self.alu_busy.get()
            + self.fill_wait.get()
            + self.mem_outbox.get()
            + self.mem_l1_queue.get()
            + self.mem_noc.get()
    }
}

/// Per-core statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoreStats {
    /// Wavefront instructions issued.
    pub instructions: Counter,
    /// Memory instructions among them.
    pub mem_instructions: Counter,
    /// Cycles where nothing could issue.
    pub idle_cycles: Counter,
    /// Cycles where a memory instruction was ready but the memory port
    /// was backpressured.
    pub mem_stall_cycles: Counter,
    /// Per-cause classification of every non-issuing cycle;
    /// `stall.total() == idle_cycles + mem_stall_cycles` always.
    pub stall: StallBreakdown,
}

/// A memory instruction leaving the core this cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IssuedMem {
    /// Issuing core.
    pub core: CoreId,
    /// Issuing wavefront (index within the core).
    pub wavefront: WavefrontId,
    /// The coalesced instruction.
    pub instr: MemInstr,
}

/// Outcome of visiting one slot during an issue scan.
enum Visit {
    /// Nothing issued from this slot; keep scanning.
    Continue,
    /// An ALU instruction issued; the cycle is consumed.
    Alu,
    /// A memory instruction issued; the cycle is consumed.
    Mem(IssuedMem),
}

/// Scan-wide accumulators threaded through [`Core::visit_slot`].
struct ScanAcc {
    mem_blocked: bool,
    any_ready: bool,
    ready_blocked: usize,
    min_busy: Cycle,
}

/// One GPU core: wavefront contexts plus a greedy round-robin issue stage.
#[derive(Debug)]
pub struct Core {
    id: CoreId,
    config: CoreConfig,
    /// Slot-indexed wavefronts; `None` = free slot.
    slots: Vec<Option<Wavefront>>,
    /// CTA id owning each slot (for accounting).
    slot_cta: Vec<Option<u32>>,
    /// Assignment age per slot (monotone counter; GTO picks the oldest).
    slot_age: Vec<u64>,
    age_counter: u64,
    /// Slot that issued most recently (GTO greediness).
    last_issued: Option<usize>,
    resident_ctas: usize,
    /// Occupied wavefront slots (kept in sync with `slots` for an O(1)
    /// drained check).
    resident_wavefronts: usize,
    /// Wavefronts currently in `WaitingMem` (kept in sync for O(1) stall
    /// classification: any waiter makes an idle cycle a fill-wait).
    waiting_wavefronts: usize,
    rr: usize,
    /// Schedulable-slot bitmask, valid when `use_mask`: bit `i` is set iff
    /// slot `i` holds a wavefront that is *not* `WaitingMem` — i.e. stored
    /// `Ready` or `Busy` (lazy `Busy → Ready` resolution happens during
    /// the scan, so `Busy` slots must stay visible to it). Issue scans walk
    /// only set bits, making scan cost proportional to schedulable
    /// wavefronts instead of `max_wavefronts`; in memory-bound phases most
    /// slots are `WaitingMem` and the scan collapses to a few bit tricks.
    sched_mask: u64,
    /// Whether `sched_mask` covers every slot (`max_wavefronts <= 64`).
    /// Larger cores fall back to the full rotated scan.
    use_mask: bool,
    /// Reusable scratch buffer for GTO ordering (avoids per-tick allocs).
    order_buf: Vec<usize>,
    /// Inert-tick memo: when `scan_valid`, the last full scan issued
    /// nothing, found `validated_ready` stored-`Ready` wavefronts (all
    /// memory-blocked), and no `Busy` wavefront expires before
    /// `next_busy_expiry`. While those facts hold, a tick's outcome is
    /// fully determined without rescanning the slots.
    scan_valid: bool,
    /// Stored-`Ready` slots; exact while `scan_valid` (incremented by
    /// [`complete_access`](Core::complete_access) and
    /// [`add_cta`](Core::add_cta), reset by every validating scan).
    ready_count: usize,
    /// `ready_count` at validation time.
    validated_ready: usize,
    /// Earliest `until` among `Busy` wavefronts at validation time
    /// (`Cycle::MAX` if none) — a lower bound on every later expiry.
    next_busy_expiry: Cycle,
    stats: CoreStats,
}

impl Core {
    /// Creates an empty core.
    pub fn new(id: CoreId, config: CoreConfig) -> Self {
        Core {
            id,
            config,
            slots: (0..config.max_wavefronts).map(|_| None).collect(),
            slot_cta: vec![None; config.max_wavefronts],
            slot_age: vec![0; config.max_wavefronts],
            age_counter: 0,
            last_issued: None,
            resident_ctas: 0,
            resident_wavefronts: 0,
            waiting_wavefronts: 0,
            rr: 0,
            sched_mask: 0,
            use_mask: config.max_wavefronts <= 64,
            order_buf: Vec::with_capacity(config.max_wavefronts),
            scan_valid: false,
            ready_count: 0,
            validated_ready: 0,
            next_busy_expiry: 0,
            stats: CoreStats::default(),
        }
    }

    /// This core's identifier.
    pub fn id(&self) -> CoreId {
        self.id
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Zeroes the statistics (end-of-warmup measurement reset).
    pub fn reset_stats(&mut self) {
        self.stats = CoreStats::default();
    }

    /// Whether another CTA of `wavefronts` wavefronts fits. O(1): free
    /// slots are `max_wavefronts - resident_wavefronts` by construction.
    pub fn can_host_cta(&self, wavefronts: usize) -> bool {
        self.resident_ctas < self.config.max_ctas
            && self.slots.len() - self.resident_wavefronts >= wavefronts
    }

    /// Marks slot `idx` schedulable (no-op on mask-less large cores).
    #[inline]
    fn mask_set(&mut self, idx: usize) {
        if self.use_mask {
            self.sched_mask |= 1 << idx;
        }
    }

    /// Marks slot `idx` unschedulable (no-op on mask-less large cores).
    #[inline]
    fn mask_clear(&mut self, idx: usize) {
        if self.use_mask {
            self.sched_mask &= !(1 << idx);
        }
    }

    /// Debug-build check that `sched_mask` mirrors the slots: bit set iff
    /// the slot is occupied by a non-`WaitingMem` wavefront.
    #[cfg(debug_assertions)]
    fn debug_assert_mask(&self) {
        if !self.use_mask {
            return;
        }
        for (i, slot) in self.slots.iter().enumerate() {
            let want = matches!(slot, Some(wf) if !wf.is_waiting_mem());
            debug_assert_eq!(
                self.sched_mask & (1 << i) != 0,
                want,
                "sched_mask out of sync at slot {i}"
            );
        }
    }

    /// Installs a CTA's wavefronts into free slots.
    ///
    /// # Panics
    ///
    /// Panics if the CTA does not fit (callers check
    /// [`can_host_cta`](Core::can_host_cta) first).
    pub fn add_cta(&mut self, cta: u32, traces: Vec<Box<dyn TraceSource>>) {
        assert!(self.can_host_cta(traces.len()), "CTA does not fit");
        self.resident_ctas += 1;
        let mut traces = traces.into_iter();
        for (i, (slot, owner)) in self.slots.iter_mut().zip(&mut self.slot_cta).enumerate() {
            if slot.is_none() {
                match traces.next() {
                    Some(t) => {
                        *slot = Some(Wavefront::new(t));
                        *owner = Some(cta);
                        self.resident_wavefronts += 1;
                        // The new wavefront is stored-`Ready`.
                        self.ready_count += 1;
                        if self.use_mask {
                            self.sched_mask |= 1 << i;
                        }
                        self.age_counter += 1;
                        self.slot_age[i] = self.age_counter;
                    }
                    None => break,
                }
            }
        }
        assert!(traces.next().is_none(), "ran out of slots mid-CTA");
    }

    /// Number of resident CTAs.
    pub fn resident_ctas(&self) -> usize {
        self.resident_ctas
    }

    /// Whether every slot is empty. O(1).
    pub fn is_drained(&self) -> bool {
        debug_assert_eq!(
            self.resident_wavefronts == 0,
            self.slots.iter().all(|s| s.is_none()),
        );
        self.resident_wavefronts == 0
    }

    /// Records `cycles` cycles where the core had nothing to issue, without
    /// scanning the slots. A [`tick`](Core::tick) on a drained or fully
    /// blocked core does exactly this (plus a fruitless scan), so callers
    /// that already know the core is inert can account for skipped cycles
    /// with this instead.
    pub fn add_idle_cycles(&mut self, cycles: u64) {
        self.count_idle(cycles);
    }

    /// Classifies and records `cycles` idle (nothing-to-issue) cycles:
    /// drained core, fill-wait (some wavefront awaiting a memory reply) or
    /// ALU-busy. Exactly one breakdown bucket gets the cycles.
    #[inline]
    fn count_idle(&mut self, cycles: u64) {
        self.stats.idle_cycles.add(cycles);
        // `waiting > 0` implies wavefronts are resident, so testing the
        // (typically most common) fill-wait class first is equivalent.
        if self.waiting_wavefronts > 0 {
            self.stats.stall.fill_wait.add(cycles);
        } else if self.resident_wavefronts == 0 {
            self.stats.stall.drained.add(cycles);
        } else {
            self.stats.stall.alu_busy.add(cycles);
        }
    }

    /// Records one memory-port stall cycle, attributed to `block`.
    #[inline]
    fn count_mem_stall(&mut self, block: MemBlock) {
        self.stats.mem_stall_cycles.inc();
        match block {
            MemBlock::OutboxDrain => self.stats.stall.mem_outbox.inc(),
            MemBlock::L1Queue => self.stats.stall.mem_l1_queue.inc(),
            MemBlock::Noc => self.stats.stall.mem_noc.inc(),
        }
    }

    /// Occupied wavefront slots.
    pub fn resident_wavefronts(&self) -> usize {
        self.resident_wavefronts
    }

    /// Wavefronts currently blocked on outstanding memory accesses.
    pub fn waiting_wavefronts(&self) -> usize {
        self.waiting_wavefronts
    }

    /// If no resident wavefront can issue at `now`, returns the earliest
    /// cycle at which one could become ready *on its own* — the soonest
    /// ALU-busy expiry — or `u64::MAX` when all are blocked on memory (or
    /// the core is drained). Returns `None` when some wavefront is ready
    /// now, i.e. the core is not inert.
    ///
    /// Resolving `Busy` expiry mutates wavefront state exactly as
    /// [`tick`](Core::tick)'s scan would.
    pub fn blocked_until(&mut self, now: Cycle) -> Option<Cycle> {
        let mut horizon = Cycle::MAX;
        if self.use_mask {
            // Only schedulable (`Ready`/`Busy`) slots can affect the
            // answer; `WaitingMem` slots neither resolve nor bound it.
            let mut m = self.sched_mask;
            while m != 0 {
                let idx = m.trailing_zeros() as usize;
                m &= m - 1;
                let wf = self.slots[idx].as_mut().expect("masked slot is occupied");
                match wf.state(now) {
                    WavefrontState::Ready => return None,
                    WavefrontState::Busy { until } => horizon = horizon.min(until),
                    WavefrontState::WaitingMem { .. } | WavefrontState::Finished => {}
                }
            }
            return Some(horizon);
        }
        for slot in self.slots.iter_mut().flatten() {
            match slot.state(now) {
                WavefrontState::Ready => return None,
                WavefrontState::Busy { until } => horizon = horizon.min(until),
                WavefrontState::WaitingMem { .. } | WavefrontState::Finished => {}
            }
        }
        Some(horizon)
    }

    /// Advances one cycle. `mem_ready` tells the core whether its memory
    /// port (local L1 queue or NoC#1 injection port) can accept an
    /// instruction this cycle.
    ///
    /// Returns the memory instruction issued this cycle, if any. At most
    /// one instruction (ALU or memory) issues per cycle.
    ///
    /// A closed port (`mem_ready == false`) is attributed to
    /// [`MemBlock::OutboxDrain`]; callers that know the precise cause
    /// should use [`tick_blocked`](Core::tick_blocked) instead.
    pub fn tick(&mut self, now: Cycle, mem_ready: bool) -> Option<IssuedMem> {
        let block = if mem_ready { None } else { Some(MemBlock::OutboxDrain) };
        self.tick_blocked(now, block)
    }

    /// Advances one cycle. `block` is `None` when the memory port can
    /// accept an instruction this cycle, or the structural reason it
    /// cannot — which is charged to the stall breakdown if a memory
    /// instruction was ready behind the closed port.
    ///
    /// Computing the cause costs the caller a queue peek and a port probe,
    /// but only on cycles whose outbox is non-empty — which are exactly
    /// the cycles that would otherwise sit in the (cheap) blocked fast
    /// path below, so the attribution work stays off the issue hot path.
    pub fn tick_blocked(&mut self, now: Cycle, block: Option<MemBlock>) -> Option<IssuedMem> {
        let mem_ready = block.is_none();
        let blocked = block.is_some();
        // Inert fast path: if no wavefront became ready since the last
        // fruitless scan (`ready_count` unchanged) and no `Busy` wavefront
        // has expired yet (`now < next_busy_expiry`), the scan outcome is
        // already known. The stored states a scan would observe — and its
        // lazy `Busy → Ready` resolutions — are untouched, so skipping is
        // exactly equivalent to re-running it.
        if self.scan_valid && self.ready_count == self.validated_ready && now < self.next_busy_expiry
        {
            if self.ready_count == 0 {
                // Nothing can issue: the scan would count an idle cycle.
                self.count_idle(1);
                return None;
            }
            if blocked {
                // Every stored-`Ready` wavefront was memory-blocked at
                // validation and the port is still closed.
                self.count_mem_stall(block.unwrap_or(MemBlock::OutboxDrain));
                return None;
            }
            // The port opened for a waiting memory instruction: scan.
        }

        let n = self.slots.len();
        let mut acc = ScanAcc {
            mem_blocked: false,
            any_ready: false,
            ready_blocked: 0,
            min_busy: Cycle::MAX,
        };

        // Walk schedulable slots in policy order. `WaitingMem` slots are
        // never visited on the masked paths: observing one is a pure no-op
        // in the full scan (`state()` does not resolve anything for
        // waiters and the scan just `continue`s), so skipping them is
        // observably identical. `Busy` slots stay in the mask so their
        // lazy `Busy → Ready` resolution and `min_busy` bound happen
        // exactly as the full scan would.
        match self.config.issue_policy {
            IssuePolicy::GreedyRoundRobin if self.use_mask => {
                // Rotated-mask round robin: visit set bits at indices
                // `rr..n` in ascending order, then `0..rr` — the same
                // sequence as `(rr + k) % n` filtered to schedulable
                // slots. `rr < n <= 64`, so the shift is in range.
                let mut hi = self.sched_mask & (!0u64 << self.rr);
                let mut lo = self.sched_mask & !(!0u64 << self.rr);
                loop {
                    let m = if hi != 0 {
                        &mut hi
                    } else if lo != 0 {
                        &mut lo
                    } else {
                        break;
                    };
                        let idx = m.trailing_zeros() as usize;
                    *m &= *m - 1;
                    match self.visit_slot(idx, now, mem_ready, &mut acc) {
                        Visit::Continue => {}
                        Visit::Alu => return None,
                        Visit::Mem(issued) => return Some(issued),
                    }
                }
            }
            IssuePolicy::GreedyRoundRobin => {
                for k in 0..n {
                    let idx = (self.rr + k) % n;
                    match self.visit_slot(idx, now, mem_ready, &mut acc) {
                        Visit::Continue => {}
                        Visit::Alu => return None,
                        Visit::Mem(issued) => return Some(issued),
                    }
                }
            }
            IssuePolicy::GreedyThenOldest => {
                // Last issuer first (greediness), then the remaining
                // schedulable slots oldest-first. Built in `order_buf` and
                // sorted in place — no per-scan allocation.
                self.order_buf.clear();
                let last = self.last_issued.filter(|&l| self.slots[l].is_some());
                if let Some(l) = last {
                    self.order_buf.push(l);
                }
                let tail = self.order_buf.len();
                if self.use_mask {
                    let mut m = self.sched_mask;
                    while m != 0 {
                                let idx = m.trailing_zeros() as usize;
                        m &= m - 1;
                        if Some(idx) != last {
                            self.order_buf.push(idx);
                        }
                    }
                } else {
                    for i in 0..n {
                        if Some(i) != last && self.slots[i].is_some() {
                            self.order_buf.push(i);
                        }
                    }
                }
                // Ages are unique (monotone assignment counter), so the
                // order is total and independent of collection order.
                let ages = &self.slot_age;
                self.order_buf[tail..].sort_unstable_by_key(|&i| ages[i]);
                for k in 0..self.order_buf.len() {
                    let idx = self.order_buf[k];
                    match self.visit_slot(idx, now, mem_ready, &mut acc) {
                        Visit::Continue => {}
                        Visit::Alu => return None,
                        Visit::Mem(issued) => return Some(issued),
                    }
                }
            }
        }

        #[cfg(debug_assertions)]
        self.debug_assert_mask();

        // Nothing issued: every schedulable slot was observed, so the
        // inert memo can be (re)validated exactly. The surviving
        // stored-`Ready` wavefronts are precisely the memory-blocked ones.
        self.ready_count = acc.ready_blocked;
        self.validated_ready = acc.ready_blocked;
        self.next_busy_expiry = acc.min_busy;
        self.scan_valid = true;

        if acc.mem_blocked {
            // `mem_blocked` only becomes true behind a closed port, so the
            // cause is always present.
            self.count_mem_stall(block.unwrap_or(MemBlock::OutboxDrain));
        } else if !acc.any_ready {
            self.count_idle(1);
        }
        None
    }

    /// Examines one slot during an issue scan: resolves its state against
    /// `now`, retires finished wavefronts, and issues at most one
    /// instruction. Scan-wide observations accumulate in `acc`.
    #[inline]
    fn visit_slot(&mut self, idx: usize, now: Cycle, mem_ready: bool, acc: &mut ScanAcc) -> Visit {
        let n = self.slots.len();
        let Some(wf) = self.slots[idx].as_mut() else { return Visit::Continue };
        match wf.state(now) {
            WavefrontState::Ready => {}
            WavefrontState::Busy { until } => {
                acc.min_busy = acc.min_busy.min(until);
                return Visit::Continue;
            }
            WavefrontState::WaitingMem { .. } | WavefrontState::Finished => return Visit::Continue,
        }
        match wf.peek() {
            WavefrontInstr::Done => {
                wf.set_finished();
                self.retire_slot(idx);
                Visit::Continue
            }
            WavefrontInstr::Alu { .. } => {
                let WavefrontInstr::Alu { latency } = wf.take() else { unreachable!() };
                wf.set_busy(now + 1 + latency as Cycle);
                self.stats.instructions.inc();
                self.rr = (idx + 1) % n;
                self.last_issued = Some(idx);
                self.scan_valid = false;
                Visit::Alu
            }
            WavefrontInstr::Mem(_) => {
                acc.any_ready = true;
                if !mem_ready {
                    // Port busy: remember the stall, try other wavefronts
                    // for ALU work.
                    acc.mem_blocked = true;
                    acc.ready_blocked += 1;
                    return Visit::Continue;
                }
                let WavefrontInstr::Mem(instr) = wf.take() else { unreachable!() };
                debug_assert!(!instr.accesses.is_empty(), "memory instruction with no accesses");
                wf.set_waiting(u32::try_from(instr.accesses.len()).expect("coalesced count"));
                self.mask_clear(idx);
                self.waiting_wavefronts += 1;
                self.stats.instructions.inc();
                self.stats.mem_instructions.inc();
                let issued = IssuedMem {
                    core: self.id,
                    wavefront: WavefrontId::new(idx),
                    instr,
                };
                self.rr = (idx + 1) % n;
                self.last_issued = Some(idx);
                self.scan_valid = false;
                Visit::Mem(issued)
            }
        }
    }

    fn retire_slot(&mut self, idx: usize) {
        self.slots[idx] = None;
        self.mask_clear(idx);
        self.resident_wavefronts -= 1;
        if self.last_issued == Some(idx) {
            self.last_issued = None;
        }
        let cta = self.slot_cta[idx].take();
        // When the last wavefront of a CTA retires, free the CTA slot.
        if let Some(cta) = cta {
            if !self.slot_cta.contains(&Some(cta)) {
                self.resident_ctas -= 1;
            }
        }
    }

    /// Completes one memory transaction for `wavefront`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is empty or not waiting on memory (a routing bug
    /// in the enclosing simulator).
    pub fn complete_access(&mut self, wavefront: WavefrontId) {
        let wf = self.slots[wavefront.index()]
            .as_mut()
            .expect("memory completion for an empty wavefront slot");
        if wf.complete_access() {
            // `WaitingMem → Ready`: invalidates the inert-tick memo via
            // the `ready_count == validated_ready` comparison.
            self.ready_count += 1;
            self.waiting_wavefronts -= 1;
            self.mask_set(wavefront.index());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{MemAccess, MemInstr, MemKind};
    use crate::trace::VecTrace;
    use dcl1_common::LineAddr;

    fn load(lines: &[u64]) -> WavefrontInstr {
        WavefrontInstr::Mem(MemInstr {
            kind: MemKind::Load,
            accesses: lines.iter().map(|&l| MemAccess { line: LineAddr::new(l), bytes: 128 }).collect(),
        })
    }

    fn core_with(traces: Vec<Vec<WavefrontInstr>>) -> Core {
        let mut c = Core::new(CoreId::new(0), CoreConfig { max_wavefronts: 8, max_ctas: 4, ..CoreConfig::default() });
        c.add_cta(
            0,
            traces.into_iter().map(|t| Box::new(VecTrace::new(t)) as Box<dyn TraceSource>).collect(),
        );
        c
    }

    #[test]
    fn issues_one_instr_per_cycle() {
        let mut c = core_with(vec![vec![
            WavefrontInstr::Alu { latency: 0 },
            WavefrontInstr::Alu { latency: 0 },
        ]]);
        assert!(c.tick(0, true).is_none());
        assert_eq!(c.stats().instructions.get(), 1);
        assert!(c.tick(1, true).is_none());
        assert_eq!(c.stats().instructions.get(), 2);
    }

    #[test]
    fn alu_latency_blocks_wavefront() {
        let mut c = core_with(vec![vec![
            WavefrontInstr::Alu { latency: 3 },
            WavefrontInstr::Alu { latency: 0 },
        ]]);
        c.tick(0, true);
        // Busy until cycle 4: nothing to issue at 1..3.
        for now in 1..4 {
            c.tick(now, true);
        }
        assert_eq!(c.stats().instructions.get(), 1);
        assert_eq!(c.stats().idle_cycles.get(), 3);
        c.tick(4, true);
        assert_eq!(c.stats().instructions.get(), 2);
    }

    #[test]
    fn mem_blocks_until_completion() {
        let mut c = core_with(vec![vec![load(&[1, 2]), WavefrontInstr::Alu { latency: 0 }]]);
        let m = c.tick(0, true).expect("mem issues");
        assert_eq!(m.instr.accesses.len(), 2);
        let wf = m.wavefront;
        assert!(c.tick(1, true).is_none());
        c.complete_access(wf);
        assert!(c.tick(2, true).is_none(), "still one access outstanding");
        c.complete_access(wf);
        c.tick(3, true);
        assert_eq!(c.stats().instructions.get(), 2);
    }

    #[test]
    fn latency_hiding_across_wavefronts() {
        // Two wavefronts: while one waits on memory the other issues ALU.
        let mut c = core_with(vec![
            vec![load(&[1])],
            vec![WavefrontInstr::Alu { latency: 0 }, WavefrontInstr::Alu { latency: 0 }],
        ]);
        let m = c.tick(0, true).expect("wf0 mem");
        assert!(c.tick(1, true).is_none()); // wf1 ALU issues
        assert_eq!(c.stats().instructions.get(), 2);
        c.complete_access(m.wavefront);
        c.tick(2, true);
        assert_eq!(c.stats().instructions.get(), 3);
        assert_eq!(c.stats().idle_cycles.get(), 0);
    }

    #[test]
    fn mem_backpressure_counts_stall_and_tries_alu() {
        let mut c = core_with(vec![vec![load(&[1])], vec![WavefrontInstr::Alu { latency: 0 }]]);
        // Port blocked: the load can't go, the ALU wavefront must issue.
        assert!(c.tick(0, false).is_none());
        assert_eq!(c.stats().instructions.get(), 1);
        // Next cycle only the load remains and the port is still blocked.
        assert!(c.tick(1, false).is_none());
        assert_eq!(c.stats().mem_stall_cycles.get(), 1);
        // Port opens.
        assert!(c.tick(2, true).is_some());
    }

    #[test]
    fn cta_accounting_frees_slots() {
        let mut c = Core::new(CoreId::new(1), CoreConfig { max_wavefronts: 4, max_ctas: 2, ..CoreConfig::default() });
        assert!(c.can_host_cta(2));
        c.add_cta(7, vec![
            Box::new(VecTrace::new(vec![])) as Box<dyn TraceSource>,
            Box::new(VecTrace::new(vec![])) as Box<dyn TraceSource>,
        ]);
        assert_eq!(c.resident_ctas(), 1);
        // Both wavefronts retire on first tick (empty traces).
        c.tick(0, true);
        assert_eq!(c.resident_ctas(), 0);
        assert!(c.is_drained());
    }

    #[test]
    fn gto_sticks_with_the_same_wavefront() {
        // Two wavefronts with ALU work: GTO should drain the first one
        // completely before touching the second.
        let mut c = Core::new(
            CoreId::new(0),
            CoreConfig {
                max_wavefronts: 4,
                max_ctas: 2,
                issue_policy: IssuePolicy::GreedyThenOldest,
            },
        );
        c.add_cta(
            0,
            vec![
                Box::new(VecTrace::new(vec![load(&[1]), WavefrontInstr::Alu { latency: 0 }]))
                    as Box<dyn TraceSource>,
                Box::new(VecTrace::new(vec![WavefrontInstr::Alu { latency: 0 }; 3]))
                    as Box<dyn TraceSource>,
            ],
        );
        // wf0 issues its load first (oldest), then blocks; wf1 runs.
        let m = c.tick(0, true).expect("wf0 load");
        assert_eq!(m.wavefront.index(), 0);
        for now in 1..4 {
            assert!(c.tick(now, true).is_none()); // wf1 ALU
        }
        assert_eq!(c.stats().instructions.get(), 4);
        // Completing wf0 makes it ready; GTO picks it by age.
        c.complete_access(m.wavefront);
        c.tick(5, true);
        assert_eq!(c.stats().instructions.get(), 5);
    }

    #[test]
    fn gto_and_rr_issue_the_same_total_work() {
        for policy in [IssuePolicy::GreedyRoundRobin, IssuePolicy::GreedyThenOldest] {
            let mut c = Core::new(
                CoreId::new(0),
                CoreConfig { max_wavefronts: 8, max_ctas: 4, issue_policy: policy },
            );
            c.add_cta(
                0,
                (0..4)
                    .map(|_| {
                        Box::new(VecTrace::new(vec![WavefrontInstr::Alu { latency: 1 }; 5]))
                            as Box<dyn TraceSource>
                    })
                    .collect(),
            );
            let mut now = 0;
            while !c.is_drained() {
                now += 1;
                c.tick(now, true);
                assert!(now < 10_000);
            }
            assert_eq!(c.stats().instructions.get(), 20, "{policy:?}");
        }
    }

    #[test]
    fn stall_breakdown_accounts_every_non_issue_cycle() {
        let mut c = core_with(vec![vec![
            WavefrontInstr::Alu { latency: 2 },
            load(&[1]),
            WavefrontInstr::Alu { latency: 0 },
        ]]);
        let mut issued_mem = None;
        for now in 0..12u64 {
            // The load reaches the head at cycle 3 (after the latency-2
            // ALU shadow); keep the port closed for its first two tries.
            let blocked = (3..5).contains(&now);
            let block = if blocked { Some(MemBlock::Noc) } else { None };
            if let Some(m) = c.tick_blocked(now, block) {
                issued_mem = Some(m);
            }
            if now == 8 {
                c.complete_access(issued_mem.take().expect("load issued by now").wavefront);
                assert_eq!(c.waiting_wavefronts(), 0);
            }
            let s = c.stats();
            // Every elapsed cycle is exactly one of issue/idle/mem-stall,
            // and the breakdown tiles the non-issue cycles.
            assert_eq!(
                s.instructions.get() + s.idle_cycles.get() + s.mem_stall_cycles.get(),
                now + 1,
                "cycle {now}"
            );
            assert_eq!(
                s.stall.total(),
                s.idle_cycles.get() + s.mem_stall_cycles.get(),
                "cycle {now}"
            );
        }
        let s = *c.stats();
        assert!(c.is_drained());
        assert_eq!(s.instructions.get(), 3);
        assert_eq!(s.stall.alu_busy.get(), 2, "ALU latency-2 shadow");
        assert_eq!(s.stall.mem_noc.get(), 2, "cycles 3-4 port closed");
        assert!(s.stall.fill_wait.get() >= 2, "load outstanding 6..=8");
        assert!(s.stall.drained.get() >= 1, "tail after wavefront retires");
        assert_eq!(s.stall.mem_outbox.get(), 0);
        assert_eq!(s.stall.mem_l1_queue.get(), 0);
    }

    #[test]
    fn add_idle_cycles_classifies_like_tick() {
        // Drained core: skipped cycles land in `drained`.
        let mut c = core_with(vec![vec![]]);
        c.tick(0, true); // retires the empty wavefront (1 drained cycle)
        c.add_idle_cycles(10);
        assert_eq!(c.stats().stall.drained.get(), 11);
        // Core with a memory waiter: skipped cycles land in `fill_wait`.
        let mut c = core_with(vec![vec![load(&[1])]]);
        c.tick(0, true).expect("load issues");
        c.add_idle_cycles(5);
        assert_eq!(c.stats().stall.fill_wait.get(), 5);
        assert_eq!(c.waiting_wavefronts(), 1);
        assert_eq!(c.resident_wavefronts(), 1);
        let s = c.stats();
        assert_eq!(s.stall.total(), s.idle_cycles.get() + s.mem_stall_cycles.get());
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn overfull_cta_panics() {
        let mut c = Core::new(CoreId::new(0), CoreConfig { max_wavefronts: 1, max_ctas: 1, ..CoreConfig::default() });
        c.add_cta(0, vec![
            Box::new(VecTrace::new(vec![])) as Box<dyn TraceSource>,
            Box::new(VecTrace::new(vec![])) as Box<dyn TraceSource>,
        ]);
    }
}
