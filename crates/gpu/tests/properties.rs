//! Randomized-but-deterministic tests for the GPU core model: instruction
//! conservation, issue bandwidth, and CTA accounting under seeded traces
//! and completion orders.

#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)]

use dcl1_common::{CoreId, LineAddr, SplitMix64};
use dcl1_gpu::{
    Core, CoreConfig, MemAccess, MemInstr, MemKind, TraceSource, VecTrace, WavefrontInstr,
};

fn random_trace(seed: u64, len: usize) -> Vec<WavefrontInstr> {
    let mut rng = SplitMix64::new(seed);
    (0..len)
        .map(|i| {
            if rng.chance(0.5) {
                WavefrontInstr::Alu { latency: rng.next_below(4) as u32 }
            } else {
                let n = 1 + rng.next_below(3);
                WavefrontInstr::Mem(MemInstr {
                    kind: if rng.chance(0.2) { MemKind::Store } else { MemKind::Load },
                    accesses: (0..n)
                        .map(|k| MemAccess { line: LineAddr::new(i as u64 * 8 + k), bytes: 32 })
                        .collect(),
                })
            }
        })
        .collect()
}

/// Every generated instruction is issued exactly once, at most one per
/// cycle, and the core drains, regardless of trace contents and memory
/// completion timing.
#[test]
fn core_issues_every_instruction_exactly_once() {
    let mut meta = SplitMix64::new(0xC04E);
    for case in 0..48u64 {
        let seed = meta.next_u64();
        let wf_count = 1 + meta.next_below(5) as usize;
        let len = 1 + meta.next_below(39) as usize;
        let completion_lag = 1 + meta.next_below(49);
        let mem_ready_mask = meta.next_u64();

        let mut core = Core::new(
            CoreId::new(0),
            CoreConfig { max_wavefronts: 8, max_ctas: 4, ..CoreConfig::default() },
        );
        let traces: Vec<Box<dyn TraceSource>> = (0..wf_count)
            .map(|w| {
                Box::new(VecTrace::new(random_trace(seed ^ w as u64, len))) as Box<dyn TraceSource>
            })
            .collect();
        core.add_cta(0, traces);

        let expected: u64 = (wf_count * len) as u64;
        // (wavefront slot, remaining accesses, completion due cycle)
        let mut pending: Vec<(usize, u32, u64)> = Vec::new();
        let mut now = 0u64;
        let mut last_count = 0;
        while !core.is_drained() {
            now += 1;
            assert!(now < 1_000_000, "core wedged at {now} (case {case})");
            // Complete due memory transactions.
            let mut still = Vec::new();
            for (wf, n, due) in pending.drain(..) {
                if due <= now {
                    for _ in 0..n {
                        core.complete_access(dcl1_common::WavefrontId::new(wf));
                    }
                } else {
                    still.push((wf, n, due));
                }
            }
            pending = still;
            let mem_ready = (mem_ready_mask >> (now % 64)) & 1 == 1;
            if let Some(m) = core.tick(now, mem_ready) {
                assert!(mem_ready, "issued memory with port closed");
                pending.push((
                    m.wavefront.index(),
                    m.instr.accesses.len() as u32,
                    now + completion_lag,
                ));
            }
            // Issue bandwidth: at most one instruction per cycle.
            let count = core.stats().instructions.get();
            assert!(count <= last_count + 1, "issued more than 1/cycle");
            last_count = count;
        }
        // Drain leftover completions.
        for (wf, n, _) in pending {
            for _ in 0..n {
                core.complete_access(dcl1_common::WavefrontId::new(wf));
            }
        }
        assert_eq!(core.stats().instructions.get(), expected, "case {case}");
        assert_eq!(core.resident_ctas(), 0);
    }
}

/// Clock domains produce exactly ⌊n·f/c⌋ ticks after n advances — no
/// drift for any frequency pair.
#[test]
fn clock_domain_is_exact() {
    let mut rng = SplitMix64::new(0xC10C);
    for _ in 0..200 {
        let f = 1 + rng.next_below(3999);
        let c = 1 + rng.next_below(3999);
        let n = 1 + rng.next_below(9_999);
        let mut d = dcl1_common::ClockDomain::new(f, c);
        let total: u64 = (0..n).map(|_| d.advance() as u64).sum();
        assert_eq!(total, n * f / c, "f={f} c={c} n={n}");
        assert_eq!(d.total_ticks(), n * f / c);
    }
}
