//! Seeded regression fixtures: every rule must fire on a deliberately-bad
//! source, stay quiet on the fixed/annotated variant, and the real
//! workspace must lint clean (the acceptance criterion for every PR).

use simcheck::rules::{lint_file, Finding};
use simcheck::schema;
use simcheck::source::SourceFile;

fn findings(path: &str, src: &str) -> Vec<Finding> {
    lint_file(&SourceFile::from_source(path, src)).findings
}

fn fires(path: &str, src: &str, rule: &str) -> bool {
    findings(path, src).iter().any(|f| f.rule == rule)
}

#[test]
fn hash_order_fires_on_default_hashmap() {
    let bad = "use std::collections::HashMap;\npub struct S { m: HashMap<u64, u64> }\n";
    assert!(fires("crates/dcl1/src/bad.rs", bad, "hash_order"));
    let set = "fn f() { let s = std::collections::HashSet::new(); }\n";
    assert!(fires("crates/mem/src/bad.rs", set, "hash_order"));
}

#[test]
fn hash_order_accepts_btree_explicit_hasher_and_tests() {
    assert!(!fires(
        "crates/dcl1/src/ok.rs",
        "use std::collections::BTreeMap;\npub struct S { m: BTreeMap<u64, u64> }\n",
        "hash_order"
    ));
    assert!(!fires(
        "crates/dcl1/src/ok.rs",
        "fn f() { let m: HashMap<u8, u8, Fnv> = HashMap::with_hasher(Fnv); }\n",
        "hash_order"
    ));
    assert!(!fires(
        "crates/dcl1/src/ok.rs",
        "#[cfg(test)]\nmod tests {\n    fn t() { let m = std::collections::HashMap::new(); }\n}\n",
        "hash_order"
    ));
}

#[test]
fn wall_clock_fires_only_in_hot_crates() {
    let bad = "fn f() { let t = std::time::Instant::now(); }\n";
    for krate in ["gpu", "dcl1", "noc", "mem", "cache", "dcl1d"] {
        assert!(fires(&format!("crates/{krate}/src/bad.rs"), bad, "wall_clock"), "{krate}");
    }
    // The bench runner legitimately measures wall time.
    assert!(!fires("crates/bench/src/runner.rs", bad, "wall_clock"));
    let env = "fn f() { let v = std::env::var(\"DCL1_SCALE\"); }\n";
    assert!(fires("crates/gpu/src/bad.rs", env, "wall_clock"));
}

#[test]
fn wall_clock_covers_the_daemon_crate() {
    // Daemon I/O timing is diagnostic-only and must stay out of sim
    // state: an un-annotated clock read anywhere in `crates/dcl1d/src`
    // is a finding, and `dcl1d` is not masked by the `dcl1` prefix.
    let bad = "fn accept_loop() { let t0 = std::time::Instant::now(); }\n";
    assert!(fires("crates/dcl1d/src/server.rs", bad, "wall_clock"));
    let env = "fn cfg() { let v = std::env::var(\"DCL1D_ADDR\"); }\n";
    assert!(fires("crates/dcl1d/src/scheduler.rs", env, "wall_clock"));
    let allowed = "// simcheck: allow(wall_clock): CLI argument parsing, not sim state\n\
                   fn main() { let a: Vec<String> = std::env::args().collect(); }\n";
    let r = lint_file(&SourceFile::from_source("crates/dcl1d/src/bin/dcl1d.rs", allowed));
    assert!(r.findings.is_empty(), "{:?}", r.findings);
    assert_eq!(r.suppressed, 1);
}

#[test]
fn truncating_cast_fires_on_counter_narrowing() {
    let bad = "fn f(&self) -> u32 { self.cycles as u32 }\n";
    assert!(fires("crates/noc/src/bad.rs", bad, "truncating_cast"));
    let flits = "let x = packet.data_flits as u16;\n";
    assert!(fires("crates/noc/src/bad.rs", flits, "truncating_cast"));
}

#[test]
fn truncating_cast_accepts_widening_lengths_and_expect() {
    assert!(!fires("crates/noc/src/ok.rs", "let x = self.cycles as u64;\n", "truncating_cast"));
    assert!(!fires("crates/noc/src/ok.rs", "let x = v.len() as u32;\n", "truncating_cast"));
    let waived = "#[expect(clippy::cast_possible_truncation)]\nfn f(&self) -> u32 { self.cycles as u32 }\n";
    assert!(!fires("crates/noc/src/ok.rs", waived, "truncating_cast"));
}

#[test]
fn float_accum_fires_on_running_float_sum() {
    let bad = "pub struct S { acc: f64 }\nimpl S { fn add(&mut self, v: f64) { self.acc += v; } }\n";
    assert!(fires("crates/obs/src/bad.rs", bad, "float_accum"));
    let local = "fn f(vs: &[f64]) -> f64 { let mut sum = 0.0; for v in vs { sum += v; } sum }\n";
    assert!(fires("crates/bench/src/bad.rs", local, "float_accum"));
}

#[test]
fn float_accum_exempts_the_welford_home_and_integers() {
    let welford = "pub struct M { wmean: f64 }\nimpl M { fn p(&mut self, d: f64) { self.wmean += d; } }\n";
    assert!(!fires("crates/common/src/stats.rs", welford, "float_accum"));
    assert!(!fires("crates/dcl1/src/ok.rs", "fn f(&mut self) { self.now += 1; }\n", "float_accum"));
}

#[test]
fn annotations_suppress_with_reason_and_report_without() {
    let with_reason = "// simcheck: allow(hash_order): insertion-only, never iterated\nlet m: HashMap<u8, u8> = mk();\n";
    let r = lint_file(&SourceFile::from_source("crates/dcl1/src/x.rs", with_reason));
    assert!(r.findings.is_empty(), "{:?}", r.findings);
    assert_eq!(r.suppressed, 1);

    let bare = "let m: HashMap<u8, u8> = mk(); // simcheck: allow(hash_order)\n";
    let r = lint_file(&SourceFile::from_source("crates/dcl1/src/x.rs", bare));
    assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
    assert!(r.findings[0].message.contains("reason"));

    let typo = "// simcheck: allow(hash_ordering): oops\nfn f() {}\n";
    let r = lint_file(&SourceFile::from_source("crates/dcl1/src/x.rs", typo));
    assert!(r.findings[0].message.contains("unknown rule"), "{:?}", r.findings);
}

#[test]
fn stats_schema_fires_on_unbumped_field_change() {
    let old = "pub struct RunStats {\n    pub cycles: u64,\n}\n";
    let new = "pub struct RunStats {\n    pub cycles: u64,\n    pub extra: u64,\n}\n";
    let (old_fp, _) = schema::fingerprint_stats(old).unwrap();
    let (new_fp, new_count) = schema::fingerprint_stats(new).unwrap();
    assert_ne!(old_fp, new_fp);
    let lock = schema::Lock { fingerprint: old_fp, field_count: 1, cache_version: 2 };
    let state = schema::SchemaState {
        fingerprint: new_fp,
        field_count: new_count,
        cache_version: 2, // not bumped
        seen_guard: Some(new_count),
    };
    let findings = schema::check_schema(&state, Some(&lock));
    assert!(
        findings.iter().any(|f| f.rule == "stats_schema"
            && f.message.contains("without bumping CACHE_SCHEMA_VERSION")),
        "{findings:?}"
    );
}

/// A deliberately nondeterministic shard-merge: every classic way to
/// break run-to-run reproducibility when folding per-shard results —
/// hash-ordered iteration, wall-clock-dependent merge order, and a
/// counter narrowed during accumulation — must be caught in the sharded
/// machine's home crate.
#[test]
fn rules_fire_on_a_nondeterministic_shard_merge() {
    let merge_by_hash_order = "use std::collections::HashMap;\n\
        pub struct Shard { counters: HashMap<u64, u64> }\n\
        fn merge(shards: &[Shard]) -> Vec<u64> {\n\
            let mut out = Vec::new();\n\
            for s in shards { for (_, v) in &s.counters { out.push(*v); } }\n\
            out\n\
        }\n";
    assert!(fires("crates/dcl1/src/shard.rs", merge_by_hash_order, "hash_order"));

    let merge_by_arrival = "fn merge(&mut self) {\n\
        let deadline = std::time::Instant::now();\n\
        while std::time::Instant::now() < deadline { self.drain_one(); }\n\
    }\n";
    assert!(fires("crates/dcl1/src/shard.rs", merge_by_arrival, "wall_clock"));

    let narrowed_merge = "fn fold(&mut self, shard_flits: u64) { self.total += shard_flits as u32 as u64; }\n";
    assert!(fires("crates/dcl1/src/shard.rs", narrowed_merge, "truncating_cast"));
}

/// The sanctioned exceptions in the real sharded machine are
/// annotation-suppressed *with reasons* — the same snippets without the
/// annotation would be findings.
#[test]
fn shard_wall_clock_exceptions_are_annotated_with_reasons() {
    // Shape of the sanctioned uses in shard.rs/machine.rs: barrier-wait
    // and busy-time diagnostics that never feed simulation state.
    let sanctioned = "// simcheck: allow(wall_clock): barrier-wait diagnostics only, never feeds stats\n\
        let t0 = std::time::Instant::now();\n";
    let r = lint_file(&SourceFile::from_source("crates/dcl1/src/shard.rs", sanctioned));
    assert!(r.findings.is_empty(), "{:?}", r.findings);
    assert_eq!(r.suppressed, 1);

    let unsanctioned = "let t0 = std::time::Instant::now();\n";
    assert!(fires("crates/dcl1/src/shard.rs", unsanctioned, "wall_clock"));
}

/// A seeded metric-registration fixture: deterministically generate a
/// metrics module with well-formed registrations, then plant one
/// malformed name and one cross-file duplicate — the per-file half must
/// flag exactly the malformed site and the workspace half exactly the
/// duplicated one.
#[test]
fn metric_names_seeded_fixture_fires_on_plants() {
    let mut rng = dcl1_common::SplitMix64::new(0x5EED_3E7A);
    for round in 0..8 {
        let n = 4 + usize::try_from(rng.next_below(12)).expect("small");
        let bad_at = usize::try_from(rng.next_below(n as u64)).expect("small");
        let dup_at = usize::try_from(rng.next_below(n as u64)).expect("small");
        let kinds = ["counter", "gauge", "histogram"];
        let mut src = String::new();
        for i in 0..n {
            let kind = kinds[usize::try_from(rng.next_below(3)).expect("small")];
            let name = if i == bad_at {
                format!("fix{round}.CamelCase_{i}")
            } else {
                format!("fix{round}.metric_{i}")
            };
            src.push_str(&format!("    let m{i} = reg.{kind}(\"{name}\");\n"));
        }
        let per_file = findings("crates/gpu/src/planted.rs", &src);
        assert_eq!(per_file.len(), 1, "round {round}: {per_file:?}");
        assert_eq!(per_file[0].rule, "metric_names");
        assert_eq!(per_file[0].line, bad_at + 1);

        // The same (well-formed) name registered again from another file.
        let other = format!("    let d = reg.counter(\"fix{round}.metric_{dup_at}\");\n");
        let mut sites =
            simcheck::rules::metric_sites(&SourceFile::from_source("crates/gpu/src/planted.rs", &src));
        sites.extend(simcheck::rules::metric_sites(&SourceFile::from_source(
            "crates/noc/src/planted.rs",
            &other,
        )));
        let dups = simcheck::rules::check_metric_duplicates(&sites);
        if dup_at == bad_at {
            // The duplicate of the malformed name still collides lexically.
            assert_eq!(dups.len(), 1, "round {round}: {dups:?}");
        } else {
            assert_eq!(dups.len(), 1, "round {round}: {dups:?}");
            assert!(dups[0].message.contains(&format!("fix{round}.metric_{dup_at}")));
        }
        assert_eq!(dups[0].path.to_string_lossy().replace('\\', "/"), "crates/noc/src/planted.rs");
    }
}

/// The acceptance criterion: the real workspace lints clean.
#[test]
fn workspace_is_simcheck_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root")
        .to_path_buf();
    let report = simcheck::run_lint(&root).expect("lint runs");
    assert!(report.files > 50, "workspace discovery broke: {} files", report.files);
    let rendered: Vec<String> = report.findings.iter().map(|f| f.to_string()).collect();
    assert!(rendered.is_empty(), "workspace has findings:\n{}", rendered.join("\n"));
}
