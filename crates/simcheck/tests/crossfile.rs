//! Seeded regression fixtures for the cross-file pass: every one of the
//! five shard-safety rules must fire on a deliberately-bad fixture tree
//! (with the hazard planted at a seed-derived position) and stay quiet on
//! the annotated variant — mirroring the per-line fixture suite in
//! `tests/rules.rs`.

use simcheck::crossfile::{lint_crossfile, CrossReport};
use simcheck::index::ItemIndex;
use simcheck::source::SourceFile;

fn cross(sources: &[(String, String)]) -> CrossReport {
    let files: Vec<SourceFile> =
        sources.iter().map(|(p, s)| SourceFile::from_source(p.as_str(), s.as_str())).collect();
    let index = ItemIndex::build(&files);
    lint_crossfile(&files, &index)
}

fn rule_hits(r: &CrossReport, rule: &str) -> Vec<(String, usize)> {
    r.findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| (f.path.to_string_lossy().replace('\\', "/"), f.line))
        .collect()
}

/// Filler body lines that no rule should react to.
fn filler(i: usize) -> String {
    format!("    let v{i} = compute_{i}(input_{i});\n")
}

/// `shard_shared_state`: a region root in one file reaches, through a
/// by-name call edge, a helper in another file that touches a `Mutex` at
/// a seed-derived line.
#[test]
fn shard_shared_state_seeded_fixture() {
    let mut rng = dcl1_common::SplitMix64::new(0x5AFE_57A7);
    for round in 0..6 {
        let lines = 4 + usize::try_from(rng.next_below(20)).expect("small");
        let plant = usize::try_from(rng.next_below(lines as u64)).expect("small");
        let region = "pub fn region_issue(d: &mut Domain) {\n    shared_helper(d);\n}\n";
        let mut helper = String::from("pub fn shared_helper(d: &mut Domain) {\n");
        for i in 0..lines {
            if i == plant {
                helper.push_str("    let guard: Mutex<u64> = Mutex::new(0);\n");
            } else {
                helper.push_str(&filler(i));
            }
        }
        helper.push_str("}\n");
        let tree = [
            ("crates/gpu/src/region.rs".to_string(), region.to_string()),
            ("crates/noc/src/helper.rs".to_string(), helper.clone()),
        ];
        let hits = rule_hits(&cross(&tree), "shard_shared_state");
        assert_eq!(
            hits,
            [("crates/noc/src/helper.rs".to_string(), plant + 2)],
            "round {round}"
        );

        // Annotated variant passes and counts as suppressed.
        let annotated = helper.replace(
            "    let guard: Mutex<u64> = Mutex::new(0);\n",
            "    // simcheck: allow(shard_shared_state): fixture-sanctioned shared guard\n    \
             let guard: Mutex<u64> = Mutex::new(0);\n",
        );
        let tree = [
            ("crates/gpu/src/region.rs".to_string(), region.to_string()),
            ("crates/noc/src/helper.rs".to_string(), annotated),
        ];
        let r = cross(&tree);
        assert!(rule_hits(&r, "shard_shared_state").is_empty(), "round {round}: {:?}", r.findings);
        assert_eq!(r.suppressed, 1, "round {round}");
    }
}

/// `shard_shared_state` covers the daemon crate: its worker threads run
/// simulation points in-process, so an un-sanctioned lock planted in a
/// `crates/dcl1d` struct (at a seed-derived field position) must fire —
/// and must not be masked by the `dcl1` crate-name prefix.
#[test]
fn shard_shared_state_covers_the_daemon_crate() {
    let mut rng = dcl1_common::SplitMix64::new(0xDC1D);
    for round in 0..6 {
        let fields = 2 + usize::try_from(rng.next_below(8)).expect("small");
        let plant = usize::try_from(rng.next_below(fields as u64)).expect("small");
        let mut src = String::from("pub struct Hub {\n");
        for i in 0..fields {
            if i == plant {
                src.push_str("    subs: Mutex<Vec<u64>>,\n");
            } else {
                src.push_str(&format!("    slot_{i}: u64,\n"));
            }
        }
        src.push_str("}\n");
        let tree = [("crates/dcl1d/src/hub.rs".to_string(), src.clone())];
        let hits = rule_hits(&cross(&tree), "shard_shared_state");
        assert_eq!(hits, [("crates/dcl1d/src/hub.rs".to_string(), plant + 2)], "round {round}");

        // The daemon's sanctioned control-plane locks carry this exact
        // annotation shape; the fixture proves it suppresses.
        let annotated = src.replace(
            "    subs: Mutex<Vec<u64>>,\n",
            "    // simcheck: allow(shard_shared_state): connection state, never simulator state\n    \
             subs: Mutex<Vec<u64>>,\n",
        );
        let r = cross(&[("crates/dcl1d/src/hub.rs".to_string(), annotated)]);
        assert!(rule_hits(&r, "shard_shared_state").is_empty(), "round {round}: {:?}", r.findings);
        assert_eq!(r.suppressed, 1, "round {round}");
    }
}

/// `merge_commutative`: a merge fn folding per-shard floats with a
/// planted subtraction.
#[test]
fn merge_commutative_seeded_fixture() {
    let mut rng = dcl1_common::SplitMix64::new(0xC0_77E7);
    for round in 0..6 {
        let lines = 3 + usize::try_from(rng.next_below(15)).expect("small");
        let plant = usize::try_from(rng.next_below(lines as u64)).expect("small");
        let mut src = String::from(
            "pub struct Meter {\n    pub wsum: f64,\n}\nimpl Meter {\n    pub fn merge_shards(&mut self, o: &Meter) {\n",
        );
        let body_start = 5;
        for i in 0..lines {
            if i == plant {
                src.push_str("        self.wsum = self.wsum - o.wsum;\n");
            } else {
                src.push_str(&format!("        self.tag_{i} = o.tag_{i};\n"));
            }
        }
        src.push_str("    }\n}\n");
        let tree = [("crates/obs/src/meter.rs".to_string(), src.clone())];
        let hits = rule_hits(&cross(&tree), "merge_commutative");
        assert_eq!(
            hits,
            [("crates/obs/src/meter.rs".to_string(), body_start + plant + 1)],
            "round {round}"
        );

        let annotated = src.replace(
            "        self.wsum = self.wsum - o.wsum;\n",
            "        // simcheck: allow(merge_commutative): fixture proves the annotation path\n        \
             self.wsum = self.wsum - o.wsum;\n",
        );
        let r = cross(&[("crates/obs/src/meter.rs".to_string(), annotated)]);
        assert!(rule_hits(&r, "merge_commutative").is_empty(), "round {round}: {:?}", r.findings);
    }
}

/// `epoch_order`: a region fn injecting into a crossbar that is not its
/// own (`self`) at a seed-derived position among legitimate self-rooted
/// injects.
#[test]
fn epoch_order_seeded_fixture() {
    let mut rng = dcl1_common::SplitMix64::new(0xE9_0C4);
    for round in 0..6 {
        let lines = 3 + usize::try_from(rng.next_below(12)).expect("small");
        let plant = usize::try_from(rng.next_below(lines as u64)).expect("small");
        let mut body = String::new();
        for i in 0..lines {
            if i == plant {
                body.push_str("        peer.bars[0].try_inject(pkt);\n");
            } else {
                body.push_str("        self.bars[0].try_inject(pkt);\n");
            }
        }
        let src = format!(
            "impl Domain {{\n    pub fn region_noc1(&mut self, peer: &mut Peer) {{\n{body}    }}\n}}\n"
        );
        let tree = [("crates/dcl1/src/dom.rs".to_string(), src.clone())];
        let hits = rule_hits(&cross(&tree), "epoch_order");
        assert_eq!(hits, [("crates/dcl1/src/dom.rs".to_string(), plant + 3)], "round {round}");

        let annotated = src.replace(
            "        peer.bars[0].try_inject(pkt);\n",
            "        // simcheck: allow(epoch_order): fixture-sanctioned direct inject\n        \
             peer.bars[0].try_inject(pkt);\n",
        );
        let r = cross(&[("crates/dcl1/src/dom.rs".to_string(), annotated)]);
        assert!(rule_hits(&r, "epoch_order").is_empty(), "round {round}: {:?}", r.findings);
    }
}

/// `unsorted_iteration`: a snapshot sink iterating a `FlatMap` field
/// without a sort; the `sorted_keys` variant passes without annotation.
#[test]
fn unsorted_iteration_seeded_fixture() {
    let mut rng = dcl1_common::SplitMix64::new(0x50_27ED);
    for round in 0..6 {
        let pre = usize::try_from(rng.next_below(8)).expect("small");
        let mut body = String::new();
        for i in 0..pre {
            body.push_str(&format!("        let t{i} = self.mark_{i};\n"));
        }
        body.push_str("        self.vals.values().for_each(|v| out.push(*v));\n");
        let src = format!(
            "pub struct Reg {{\n    vals: FlatMap<u64>,\n}}\nimpl Reg {{\n    \
             pub fn snapshot(&self, out: &mut Vec<u64>) {{\n{body}    }}\n}}\n"
        );
        let tree = [("crates/obs/src/reg.rs".to_string(), src.clone())];
        let hits = rule_hits(&cross(&tree), "unsorted_iteration");
        assert_eq!(hits, [("crates/obs/src/reg.rs".to_string(), pre + 6)], "round {round}");

        // The sorted chain is the fix, not an annotation.
        let sorted = src.replace(
            "self.vals.values().for_each(|v| out.push(*v));",
            "self.vals.sorted_keys().for_each(|k| out.push(self.vals[k]));",
        );
        let r = cross(&[("crates/obs/src/reg.rs".to_string(), sorted)]);
        assert!(rule_hits(&r, "unsorted_iteration").is_empty(), "round {round}: {:?}", r.findings);
    }
}

/// `rng_source`: ambient entropy and non-literal SplitMix seeds in a sim
/// crate fire; the literal-seeded `.split(id)` idiom passes.
#[test]
fn rng_source_seeded_fixture() {
    let mut rng = dcl1_common::SplitMix64::new(0x4A6D_0311);
    for round in 0..6 {
        let lines = 3 + usize::try_from(rng.next_below(10)).expect("small");
        let plant = usize::try_from(rng.next_below(lines as u64)).expect("small");
        let entropy = rng.next_below(2) == 0;
        let mut src = String::from("pub fn build_streams(uid: u64) {\n");
        for i in 0..lines {
            if i == plant {
                src.push_str(if entropy {
                    "    let h = std::collections::hash_map::RandomState::new();\n"
                } else {
                    "    let r = SplitMix64::new(uid);\n"
                });
            } else {
                src.push_str("    let s = SplitMix64::new(0xA99_5EED).split(uid);\n");
            }
        }
        src.push_str("}\n");
        let tree = [("crates/workloads/src/streams.rs".to_string(), src.clone())];
        let hits = rule_hits(&cross(&tree), "rng_source");
        assert_eq!(
            hits,
            [("crates/workloads/src/streams.rs".to_string(), plant + 2)],
            "round {round} (entropy={entropy})"
        );

        // Outside the sim crates the rule does not apply (the seeded
        // entry points themselves live in `common`).
        let r = cross(&[("crates/common/src/rng.rs".to_string(), src)]);
        assert!(rule_hits(&r, "rng_source").is_empty(), "round {round}: {:?}", r.findings);
    }
}

/// The index builder on a synthetic two-file crate: items, impl types,
/// fields, and cross-file call edges all resolve.
#[test]
fn index_builder_synthetic_two_file_crate() {
    let a = "pub struct Router {\n    pub ports: Vec<Port>,\n    pending: FlatMap<u32>,\n}\n\
             impl Router {\n    pub fn route(&mut self, p: Packet) {\n        classify(p);\n        self.push_port(p);\n    }\n\
                 fn push_port(&mut self, p: Packet) {\n        self.ports[0].accept(p);\n    }\n}\n";
    let b = "pub fn classify(p: Packet) -> Class {\n    score(p)\n}\n\
             fn score(p: Packet) -> Class {\n    Class::Bulk\n}\n";
    let files = vec![
        SourceFile::from_source("crates/noc/src/router.rs", a),
        SourceFile::from_source("crates/noc/src/classify.rs", b),
    ];
    let idx = ItemIndex::build(&files);

    let router = idx.struct_named("Router", "noc").expect("indexed");
    let fields: Vec<&str> = router.fields.iter().map(|f| f.name.as_str()).collect();
    assert_eq!(fields, ["ports", "pending"]);

    let names: Vec<&str> = idx.fns.iter().map(|f| f.name.as_str()).collect();
    assert_eq!(names, ["route", "push_port", "classify", "score"]);
    let route = &idx.fns[0];
    assert_eq!(route.impl_type.as_deref(), Some("Router"));
    assert!(route.calls.contains(&"classify".to_string()), "{:?}", route.calls);
    assert!(route.calls.contains(&"push_port".to_string()), "{:?}", route.calls);

    // The by-name edge from file A resolves to the fn defined in file B.
    let classify_hits = idx.fns_named("classify");
    assert_eq!(classify_hits.len(), 1);
    assert_eq!(
        idx.fns[classify_hits[0]].path.to_string_lossy().replace('\\', "/"),
        "crates/noc/src/classify.rs"
    );
}

/// The `allow_hygiene` rename: unknown-rule annotations report under
/// their own rule name (not `hash_order`) and are themselves
/// suppressible with a reasoned `allow(allow_hygiene)`.
#[test]
fn allow_hygiene_reports_under_its_own_name() {
    let typo = "// simcheck: allow(hash_ordering): oops\nfn f() {}\n";
    let r = simcheck::rules::lint_file(&SourceFile::from_source("crates/dcl1/src/x.rs", typo));
    assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
    assert_eq!(r.findings[0].rule, "allow_hygiene");
    assert!(r.findings[0].message.contains("unknown rule"));

    let waived = "// simcheck: allow(allow_hygiene): documents a rule shipping next PR\n\
                  // simcheck: allow(shard_replay): forward reference\nfn f() {}\n";
    let r = simcheck::rules::lint_file(&SourceFile::from_source("crates/dcl1/src/x.rs", waived));
    assert!(r.findings.is_empty(), "{:?}", r.findings);
    assert_eq!(r.suppressed, 1);
}
