//! Thin CLI over the `simcheck` library.
//!
//! ```text
//! cargo run -p simcheck -- lint [--root=PATH] [--report=PATH] [--sarif=PATH]
//! cargo run -p simcheck -- schema [--root=PATH] [--update]
//! ```
//!
//! `lint` exits non-zero when any unannotated finding remains; `schema
//! --update` rewrites `simcheck.lock` (fingerprint + rule census) after a
//! reviewed stats or rule change.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut report_path: Option<PathBuf> = None;
    let mut sarif_path: Option<PathBuf> = None;
    let mut update = false;
    args.retain(|arg| {
        let (flag, value) = match arg.split_once('=') {
            Some((f, v)) => (f, Some(v)),
            None => (arg.as_str(), None),
        };
        match flag {
            "--root" => root = Some(PathBuf::from(value.unwrap_or("."))),
            "--report" => report_path = Some(PathBuf::from(value.unwrap_or("simcheck-report.txt"))),
            "--sarif" => sarif_path = Some(PathBuf::from(value.unwrap_or("simcheck.sarif"))),
            "--update" => update = true,
            _ => return true,
        }
        false
    });
    let command = args.first().map(String::as_str).unwrap_or("lint");
    let root = match simcheck::workspace::find_root(root.as_deref()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("simcheck: {e}");
            return ExitCode::FAILURE;
        }
    };
    match command {
        "lint" => lint(&root, report_path.as_deref(), sarif_path.as_deref()),
        "schema" => schema(&root, update),
        other => {
            eprintln!("simcheck: unknown command {other:?} (expected `lint` or `schema`)");
            ExitCode::FAILURE
        }
    }
}

fn lint(
    root: &std::path::Path,
    report_path: Option<&std::path::Path>,
    sarif_path: Option<&std::path::Path>,
) -> ExitCode {
    let report = match simcheck::run_lint(root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("simcheck: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut text = String::new();
    for f in &report.findings {
        let _ = writeln!(text, "{f}");
    }
    let _ = writeln!(
        text,
        "simcheck: {} finding(s) across {} files, {} rules ({} suppressed by annotations)",
        report.findings.len(),
        report.files,
        report.rules,
        report.suppressed
    );
    print!("{text}");
    if let Some(path) = report_path {
        if let Err(e) = std::fs::write(path, &text) {
            eprintln!("simcheck: cannot write report {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = sarif_path {
        let sarif = simcheck::sarif::render(&report.findings);
        if let Err(e) = std::fs::write(path, sarif) {
            eprintln!("simcheck: cannot write SARIF log {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn schema(root: &std::path::Path, update: bool) -> ExitCode {
    let state = match simcheck::schema::read_state(root) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("simcheck: {e}");
            return ExitCode::FAILURE;
        }
    };
    let lock_path = root.join(simcheck::schema::LOCK_PATH);
    if update {
        let text = simcheck::schema::render_lock(&state);
        if let Err(e) = std::fs::write(&lock_path, text) {
            eprintln!("simcheck: cannot write {}: {e}", lock_path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "simcheck: lock updated ({} fields, cache v{}, {} rules)",
            state.field_count,
            state.cache_version,
            simcheck::rules::RULES.len()
        );
        return ExitCode::SUCCESS;
    }
    let lock_text = std::fs::read_to_string(&lock_path).ok();
    let lock = lock_text.as_deref().and_then(simcheck::schema::parse_lock);
    let mut findings = simcheck::schema::check_schema(&state, lock.as_ref());
    findings.extend(simcheck::schema::check_rule_census(lock_text.as_deref()));
    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        println!(
            "simcheck: stats schema locked ({} fields, cache v{}, {} rules)",
            state.field_count,
            state.cache_version,
            simcheck::rules::RULES.len()
        );
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
