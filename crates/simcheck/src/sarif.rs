//! Minimal SARIF 2.1.0 rendering of a lint run — enough for GitHub code
//! scanning to annotate PRs: tool + rule ids, and one result per finding
//! with file, line, and message. Hand-rolled JSON, same zero-dependency
//! rule as the rest of the crate.

use crate::rules::Finding;

/// Renders `findings` as a single-run SARIF 2.1.0 log.
pub fn render(findings: &[Finding]) -> String {
    let mut out = String::with_capacity(2048);
    out.push_str("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"simcheck\",\n");
    out.push_str("          \"informationUri\": \"README.md\",\n");
    out.push_str("          \"rules\": [\n");
    let all_rules: Vec<&str> = crate::rules::RULES
        .iter()
        .copied()
        .chain(std::iter::once(crate::rules::ALLOW_HYGIENE))
        .collect();
    for (i, rule) in all_rules.iter().enumerate() {
        out.push_str("            {\"id\": ");
        push_json_string(&mut out, rule);
        out.push('}');
        out.push_str(if i + 1 < all_rules.len() { ",\n" } else { "\n" });
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str("        {\n          \"ruleId\": ");
        push_json_string(&mut out, f.rule);
        out.push_str(",\n          \"level\": \"error\",\n          \"message\": {\"text\": ");
        push_json_string(&mut out, &f.message);
        out.push_str("},\n          \"locations\": [\n            {\"physicalLocation\": {");
        out.push_str("\"artifactLocation\": {\"uri\": ");
        push_json_string(&mut out, &f.path.to_string_lossy().replace('\\', "/"));
        out.push_str("}, \"region\": {\"startLine\": ");
        out.push_str(&f.line.max(1).to_string());
        out.push_str("}}}\n          ]\n        }");
        out.push_str(if i + 1 < findings.len() { ",\n" } else { "\n" });
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

/// Appends `s` as a JSON string literal (quotes included).
fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn empty_run_is_well_formed() {
        let s = render(&[]);
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"name\": \"simcheck\""));
        assert!(s.contains("\"results\": [\n      ]"), "{s}");
        // Every enabled rule (and the hygiene meta-rule) is declared.
        for rule in crate::rules::RULES {
            assert!(s.contains(&format!("{{\"id\": \"{rule}\"}}")), "{rule} missing");
        }
        assert!(s.contains("allow_hygiene"));
    }

    #[test]
    fn findings_render_with_location_and_escaping() {
        let f = Finding {
            rule: "hash_order",
            path: PathBuf::from("crates/gpu/src/x.rs"),
            line: 7,
            message: "uses `HashMap` with \"random\" state\nbadly".to_string(),
        };
        let s = render(&[f]);
        assert!(s.contains("\"ruleId\": \"hash_order\""));
        assert!(s.contains("\"uri\": \"crates/gpu/src/x.rs\""));
        assert!(s.contains("\"startLine\": 7"));
        assert!(s.contains("\\\"random\\\" state\\nbadly"));
    }
}
