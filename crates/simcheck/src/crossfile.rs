//! Pass 2: cross-file shard-safety and determinism rules, driven by the
//! [`crate::index::ItemIndex`].
//!
//! The epoch-barrier machine (`dcl1::shard`) is deterministic only while
//! three invariants hold: shard regions share no mutable state, all
//! cross-shard traffic is staged through sorted `EpochBatch`es, and every
//! reduction over per-shard results is commutative. The rules here check
//! those invariants at `cargo` time, lexically, over the whole workspace
//! — the runtime 1-vs-N-shard byte-identity tests remain the ground
//! truth, but a static rule fires on the PR that introduces the hazard
//! instead of on the host where it first reorders.

use crate::index::{FnItem, ItemIndex};
use crate::rules::{allow_for, declared_floats, find_word, Finding};
use crate::source::SourceFile;
use std::collections::BTreeMap;
use std::path::Path;

/// Crates whose step paths run inside shard domains. `dcl1d` qualifies
/// because its worker threads run points in-process: shared mutable state
/// there is one call away from a shard domain.
const SHARD_CRATES: [&str; 6] = ["gpu", "dcl1", "noc", "mem", "cache", "dcl1d"];

/// Crates covered by the `rng_source` rule (the sim crates plus the
/// trace generator; `common` hosts the sanctioned seeded entry points).
const RNG_CRATES: [&str; 6] = ["gpu", "dcl1", "noc", "mem", "cache", "workloads"];

/// Function-name markers identifying deterministic-output sinks for the
/// `unsorted_iteration` rule.
const SINK_MARKERS: [&str; 11] = [
    "snapshot", "stats", "dump", "render", "journal", "report", "json", "csv", "collect",
    "write", "emit",
];

/// Map/set types whose plain iteration order is not sorted.
const MAP_TYPES: [&str; 4] = ["FlatMap", "FlatSet", "HashMap", "HashSet"];

/// Result of the cross-file pass.
#[derive(Debug, Default)]
pub struct CrossReport {
    /// Findings that survived annotation filtering.
    pub findings: Vec<Finding>,
    /// Findings suppressed by a reasoned annotation.
    pub suppressed: usize,
}

/// Runs every cross-file rule and applies `// simcheck: allow` filtering.
pub fn lint_crossfile(files: &[SourceFile], index: &ItemIndex) -> CrossReport {
    let by_path: BTreeMap<&Path, &SourceFile> =
        files.iter().map(|f| (f.path.as_path(), f)).collect();
    let reachable = shard_reachable(index);

    let mut raw = Vec::new();
    shard_shared_state(index, &by_path, &reachable, &mut raw);
    epoch_order(index, &by_path, &reachable, &mut raw);
    merge_commutative(index, &by_path, &mut raw);
    unsorted_iteration(index, &by_path, &mut raw);
    rng_source(files, &mut raw);

    let mut report = CrossReport::default();
    for f in raw {
        let Some(file) = by_path.get(f.path.as_path()) else {
            report.findings.push(f);
            continue;
        };
        match allow_for(file, f.line, f.rule) {
            Some(a) if a.has_reason => report.suppressed += 1,
            Some(_) => report.findings.push(Finding {
                rule: f.rule,
                path: f.path.clone(),
                line: f.line,
                message: format!(
                    "annotation `simcheck: allow({})` needs a `: reason` explaining why the \
                     finding is safe",
                    f.rule
                ),
            }),
            None => report.findings.push(f),
        }
    }
    report
}

/// Whether a fn is a sanctioned shared-state owner: `ShardPool` (the one
/// blessed thread/`Mutex` holder) or anything in `crates/resilience`.
/// Sanctioned fns are neither scanned nor traversed through.
fn sanctioned_fn(f: &FnItem) -> bool {
    f.impl_type.as_deref() == Some("ShardPool")
        || f.path.to_string_lossy().replace('\\', "/").contains("crates/resilience/")
}

/// Shard-step entry points: `run_region` and the `region_*` family in the
/// shard crates.
fn is_region_root(f: &FnItem) -> bool {
    !f.in_test
        && SHARD_CRATES.contains(&f.krate.as_str())
        && (f.name == "run_region" || f.name.starts_with("region_"))
}

/// Per-fn reachability from the shard-step roots, over by-name call
/// edges. Over-approximate by construction: `x.tick()` reaches every
/// `fn tick` in the workspace. Sanctioned fns terminate traversal.
fn shard_reachable(index: &ItemIndex) -> Vec<bool> {
    let mut reach = vec![false; index.fns.len()];
    let mut queue: Vec<usize> = index
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| is_region_root(f))
        .map(|(i, _)| i)
        .collect();
    for &i in &queue {
        reach[i] = true;
    }
    while let Some(i) = queue.pop() {
        let f = &index.fns[i];
        if sanctioned_fn(f) {
            continue;
        }
        for call in &f.calls {
            for &j in index.fns_named(call) {
                if !reach[j] && !index.fns[j].in_test {
                    reach[j] = true;
                    queue.push(j);
                }
            }
        }
    }
    reach
}

/// The banned shared-state token on a scrubbed code line, if any.
fn shared_state_token(code: &str) -> Option<&'static str> {
    // `Cell<` catches `RefCell<`, `UnsafeCell<`, `OnceCell<` too — the
    // boundary check below only constrains the char *before* the match.
    // `Atomic` demands an uppercase letter after it (`AtomicU64`,
    // `AtomicBool`, …) so the simulator's own `MemKind::Atomic` variant
    // does not trip it.
    for (needle, label, upper_after) in [
        ("Cell<", "interior-mutability cell", false),
        ("Mutex", "Mutex", false),
        ("RwLock", "RwLock", false),
        ("Atomic", "atomic", true),
        ("static mut", "static mut", false),
        ("thread::spawn", "thread::spawn", false),
        (".spawn(", "spawn", false),
    ] {
        let mut search = 0;
        while let Some(rel) = code[search..].find(needle) {
            let at = search + rel;
            search = at + needle.len();
            let before_ok = at == 0
                || !code[..at]
                    .chars()
                    .next_back()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_');
            let after_ok = !upper_after
                || code[at + needle.len()..]
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_uppercase());
            if before_ok && after_ok {
                return Some(label);
            }
        }
    }
    None
}

/// `shard_shared_state`: no interior mutability or thread spawning
/// reachable from shard-step paths, and no shard-crate struct owning
/// such state — except `ShardPool` (plus the structs its fields name)
/// and `crates/resilience`.
fn shard_shared_state(
    index: &ItemIndex,
    by_path: &BTreeMap<&Path, &SourceFile>,
    reachable: &[bool],
    out: &mut Vec<Finding>,
) {
    // Fn half: scan the body lines of every reachable, unsanctioned fn
    // in the shard crates.
    let mut seen_lines: std::collections::BTreeSet<(std::path::PathBuf, usize)> =
        std::collections::BTreeSet::new();
    for (i, f) in index.fns.iter().enumerate() {
        if !reachable[i] || sanctioned_fn(f) || !SHARD_CRATES.contains(&f.krate.as_str()) {
            continue;
        }
        let Some(file) = by_path.get(f.path.as_path()) else { continue };
        for line in &file.lines {
            if line.number < f.start_line || line.number > f.end_line || line.in_test {
                continue;
            }
            if let Some(label) = shared_state_token(&line.code) {
                if seen_lines.insert((f.path.clone(), line.number)) {
                    out.push(Finding {
                        rule: "shard_shared_state",
                        path: f.path.clone(),
                        line: line.number,
                        message: format!(
                            "{label} inside `{}`, reachable from a shard-step region: shard \
                             domains must not share mutable state (only ShardPool and \
                             crates/resilience may own it)",
                            f.name
                        ),
                    });
                }
            }
        }
    }
    // Struct half: no shard-crate struct may own shared-state fields.
    let sanctioned = sanctioned_structs(index);
    for s in &index.structs {
        if s.in_test
            || !SHARD_CRATES.contains(&s.krate.as_str())
            || sanctioned.contains(&s.name)
        {
            continue;
        }
        for field in &s.fields {
            if let Some(label) = shared_state_token(&field.ty) {
                if seen_lines.insert((s.path.clone(), field.line)) {
                    out.push(Finding {
                        rule: "shard_shared_state",
                        path: s.path.clone(),
                        line: field.line,
                        message: format!(
                            "field `{}.{}` owns {label} state in a shard crate: per-shard \
                             state must be plainly owned so domains stay independent (only \
                             ShardPool and crates/resilience may hold shared state)",
                            s.name, field.name
                        ),
                    });
                }
            }
        }
    }
}

/// Struct names exempt from the struct half of `shard_shared_state`:
/// `ShardPool` itself, every type named in its fields (one level — the
/// pool's slots are its implementation detail, the domains inside them
/// are not), and everything defined in `crates/resilience`.
fn sanctioned_structs(index: &ItemIndex) -> std::collections::BTreeSet<String> {
    let mut names = std::collections::BTreeSet::new();
    names.insert("ShardPool".to_string());
    for s in &index.structs {
        if s.path.to_string_lossy().replace('\\', "/").contains("crates/resilience/") {
            names.insert(s.name.clone());
        }
        if s.name == "ShardPool" {
            for field in &s.fields {
                let mut ident = String::new();
                for c in field.ty.chars() {
                    if c.is_alphanumeric() || c == '_' {
                        ident.push(c);
                    } else {
                        if ident.chars().next().is_some_and(char::is_uppercase) {
                            names.insert(std::mem::take(&mut ident));
                        }
                        ident.clear();
                    }
                }
                if ident.chars().next().is_some_and(char::is_uppercase) {
                    names.insert(ident);
                }
            }
        }
    }
    names
}

/// `epoch_order`: inside shard-step paths, cross-shard traffic must go
/// through `EpochBatch` staging; a direct `inject` into a crossbar that
/// is not the region's own (`self`-rooted) bypasses the sorted barrier
/// and makes delivery order depend on shard scheduling.
fn epoch_order(
    index: &ItemIndex,
    by_path: &BTreeMap<&Path, &SourceFile>,
    reachable: &[bool],
    out: &mut Vec<Finding>,
) {
    for (i, f) in index.fns.iter().enumerate() {
        if !reachable[i] || !SHARD_CRATES.contains(&f.krate.as_str()) {
            continue;
        }
        // The staging/crossbar implementations are where injects *live*.
        if matches!(f.impl_type.as_deref(), Some("Crossbar" | "EpochBatch")) {
            continue;
        }
        let p = f.path.to_string_lossy().replace('\\', "/");
        if p.ends_with("noc/src/crossbar.rs") || p.ends_with("noc/src/epoch.rs") {
            continue;
        }
        // Method chains wrap across lines under rustfmt, so the receiver
        // walk runs over the joined body text.
        let body = body_lines(f, by_path);
        let mut joined = String::new();
        let mut line_starts: Vec<(usize, usize)> = Vec::new();
        for l in &body {
            line_starts.push((joined.len(), l.number));
            joined.push_str(&l.code);
            joined.push('\n');
        }
        for needle in [".try_inject(", ".inject_batch(", ".inject("] {
            let mut search = 0;
            while let Some(rel) = joined[search..].find(needle) {
                let at = search + rel;
                search = at + needle.len();
                if receiver_root(&joined, at).as_deref() != Some("self") {
                    let line = line_starts
                        .iter()
                        .take_while(|(s, _)| *s <= at)
                        .last()
                        .map_or(f.start_line, |(_, n)| *n);
                    out.push(Finding {
                        rule: "epoch_order",
                        path: f.path.clone(),
                        line,
                        message: format!(
                            "`{}` into a non-`self` crossbar inside shard-step fn `{}`: \
                             cross-shard traffic must be staged through EpochBatch so \
                             delivery order is sorted, not scheduling-dependent",
                            needle.trim_start_matches('.').trim_end_matches('('),
                            f.name
                        ),
                    });
                }
            }
        }
    }
}

/// The leftmost identifier of the receiver chain ending at the `.` at
/// byte `at`: `self.noc1_rep[ki].try_inject(` → `self`;
/// `bars[d].inject(` → `bars`. Walks back over idents, `.`/`::`, and
/// balanced `(..)`/`[..]` groups.
fn receiver_root(code: &str, at: usize) -> Option<String> {
    let chars: Vec<char> = code[..at].chars().collect();
    let mut i = chars.len();
    let mut root: Option<String> = None;
    loop {
        if i == 0 {
            return root;
        }
        match chars[i - 1] {
            ')' | ']' => {
                let close = chars[i - 1];
                let open = if close == ')' { '(' } else { '[' };
                let mut depth = 0i32;
                while i > 0 {
                    i -= 1;
                    if chars[i] == close {
                        depth += 1;
                    } else if chars[i] == open {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                }
            }
            c if c.is_alphanumeric() || c == '_' => {
                let end = i;
                while i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_') {
                    i -= 1;
                }
                root = Some(chars[i..end].iter().collect());
            }
            '.' | ':' => i -= 1,
            // Whitespace before any chain part is a rustfmt line wrap
            // (`self.x[i]\n    .try_inject(`); whitespace after an ident
            // ends the chain.
            c if c.is_whitespace() && root.is_none() => i -= 1,
            _ => return root,
        }
    }
}

/// Map-typed names visible to a fn: fields of its impl struct plus
/// locals declared in its body.
fn map_typed_names(
    f: &FnItem,
    index: &ItemIndex,
    body: &[&crate::source::Line],
) -> Vec<String> {
    let mut names = Vec::new();
    if let Some(ty) = f.impl_type.as_deref() {
        if let Some(s) = index.struct_named(ty, &f.krate) {
            for field in &s.fields {
                if MAP_TYPES.iter().any(|t| find_word(&field.ty, t).is_some()) {
                    names.push(field.name.clone());
                }
            }
        }
    }
    for line in body {
        if !MAP_TYPES.iter().any(|t| find_word(&line.code, t).is_some()) {
            continue;
        }
        let Some(at) = find_word(&line.code, "let") else { continue };
        let rest = line.code[at + 3..].trim_start();
        let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
        let ident: String =
            rest.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
        if !ident.is_empty() {
            names.push(ident);
        }
    }
    names
}

/// The name of the receiver directly left of the `.` at byte `at`
/// (`self.counts.iter()` → `counts`; `m.keys()` → `m`).
fn receiver_name(code: &str, at: usize) -> Option<String> {
    let chars: Vec<char> = code[..at].chars().collect();
    let mut i = chars.len();
    while i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_') {
        i -= 1;
    }
    if i == chars.len() {
        None
    } else {
        Some(chars[i..].iter().collect())
    }
}

/// Body lines of `f` in its source file (production lines only).
fn body_lines<'a>(
    f: &FnItem,
    by_path: &BTreeMap<&Path, &'a SourceFile>,
) -> Vec<&'a crate::source::Line> {
    let Some(file) = by_path.get(f.path.as_path()) else { return Vec::new() };
    file.lines
        .iter()
        .filter(|l| l.number >= f.start_line && l.number <= f.end_line && !l.in_test)
        .collect()
}

/// `merge_commutative`: fns named `merge*`/`*_merge` fold per-shard
/// results into one, so they run once per shard in shard-id order — any
/// order-dependent operation inside one changes bytes with the shard
/// count. `common/src/stats.rs` (home of the Welford mean, whose merge
/// is the reviewed exception) is exempt.
fn merge_commutative(
    index: &ItemIndex,
    by_path: &BTreeMap<&Path, &SourceFile>,
    out: &mut Vec<Finding>,
) {
    for f in &index.fns {
        if f.in_test || !(f.name.starts_with("merge") || f.name.ends_with("_merge")) {
            continue;
        }
        let p = f.path.to_string_lossy().replace('\\', "/");
        if p.ends_with("common/src/stats.rs") {
            continue;
        }
        let Some(file) = by_path.get(f.path.as_path()) else { continue };
        let body = body_lines(f, by_path);
        let floats = declared_floats(file);
        let body_text: String =
            body.iter().map(|l| l.code.as_str()).collect::<Vec<_>>().join("\n");
        let sorted = body_text.contains("sort");
        let enumerated = body_text.contains(".enumerate()");
        let maps = map_typed_names(f, index, &body);
        for line in &body {
            let code = &line.code;
            // (a) subtraction/division on an accumulated float.
            let float_on_line = floats.iter().any(|n| find_word(code, n).is_some());
            if float_on_line
                && ["-=", "/=", " - ", " / "].iter().any(|op| code.contains(op))
            {
                out.push(Finding {
                    rule: "merge_commutative",
                    path: f.path.clone(),
                    line: line.number,
                    message: format!(
                        "float subtraction/division inside merge fn `{}` is order-dependent \
                         across shards; restate the merge as a commutative fold (sums, \
                         Welford via RunningMean)",
                        f.name
                    ),
                });
                continue;
            }
            // (b) unsorted map iteration.
            if !sorted {
                for needle in [".iter()", ".keys()", ".values()"] {
                    let Some(at) = code.find(needle) else { continue };
                    if receiver_name(code, at).is_some_and(|r| maps.contains(&r)) {
                        out.push(Finding {
                            rule: "merge_commutative",
                            path: f.path.clone(),
                            line: line.number,
                            message: format!(
                                "unsorted map iteration inside merge fn `{}`; iterate \
                                 `sorted_keys()` (or sort first) so the fold order is \
                                 shard-count-independent",
                                f.name
                            ),
                        });
                        break;
                    }
                }
            }
            // (c) index-dependent writes under `.enumerate()`.
            if enumerated && ["] = ", "] += "].iter().any(|w| code.contains(w)) {
                let bracket = code.rfind(']').and_then(|close| {
                    code[..close].rfind('[').map(|open| &code[open + 1..close])
                });
                if bracket.is_some_and(|b| b.chars().any(char::is_alphabetic)) {
                    out.push(Finding {
                        rule: "merge_commutative",
                        path: f.path.clone(),
                        line: line.number,
                        message: format!(
                            "index-dependent write under `.enumerate()` inside merge fn \
                             `{}` ties the result to visit order; key the write by content, \
                             not position",
                            f.name
                        ),
                    });
                }
            }
        }
    }
}

/// `unsorted_iteration`: fns whose names mark them as deterministic-output
/// sinks (stats, snapshots, journals, reports) must not iterate an
/// unsorted map/set without a sort in the chain — the emitted bytes are
/// diffed and cached.
fn unsorted_iteration(
    index: &ItemIndex,
    by_path: &BTreeMap<&Path, &SourceFile>,
    out: &mut Vec<Finding>,
) {
    for f in &index.fns {
        if f.in_test || !SINK_MARKERS.iter().any(|m| f.name.contains(m)) {
            continue;
        }
        let body = body_lines(f, by_path);
        let body_text: String =
            body.iter().map(|l| l.code.as_str()).collect::<Vec<_>>().join("\n");
        if body_text.contains("sort") {
            continue; // `.sorted_keys()`, `.sort()`, `sort_unstable` …
        }
        let maps = map_typed_names(f, index, &body);
        if maps.is_empty() {
            continue;
        }
        for line in &body {
            for needle in [".iter()", ".keys()", ".values()"] {
                let Some(at) = line.code.find(needle) else { continue };
                if receiver_name(&line.code, at).is_some_and(|r| maps.contains(&r)) {
                    out.push(Finding {
                        rule: "unsorted_iteration",
                        path: f.path.clone(),
                        line: line.number,
                        message: format!(
                            "sink fn `{}` iterates an unsorted map/set; emitted bytes are \
                             cached/diffed, so iterate `sorted_keys()` (or collect and sort) \
                             for a stable order",
                            f.name
                        ),
                    });
                    break;
                }
            }
        }
    }
}

/// `rng_source`: randomness in the sim crates must flow from the seeded
/// `dcl1_common::SplitMix64` entry points with literal seeds; ambient
/// entropy (OS RNG, hasher RandomState, run-to-run seeds) breaks replay
/// and the on-disk memo.
fn rng_source(files: &[SourceFile], out: &mut Vec<Finding>) {
    for file in files {
        let krate = crate::index::crate_of(&file.path);
        if !RNG_CRATES.contains(&krate.as_str()) {
            continue;
        }
        for line in file.lines.iter().filter(|l| !l.in_test) {
            for tok in
                ["thread_rng", "from_entropy", "OsRng", "getrandom", "RandomState", "DefaultHasher"]
            {
                if find_word(&line.code, tok).is_some() {
                    out.push(Finding {
                        rule: "rng_source",
                        path: file.path.clone(),
                        line: line.number,
                        message: format!(
                            "`{tok}` is ambient entropy in a sim crate; all randomness must \
                             come from a literal-seeded dcl1_common::SplitMix64"
                        ),
                    });
                    break;
                }
            }
            // A SplitMix64 seeded from a non-literal is replay-hostile
            // unless the value is itself derived from a literal seed
            // upstream — demand the annotation spell that out.
            if let Some(at) = line.code.find("SplitMix64::new(") {
                let arg = line.code[at + "SplitMix64::new(".len()..].trim_start();
                if !arg.chars().next().is_some_and(|c| c.is_ascii_digit()) {
                    out.push(Finding {
                        rule: "rng_source",
                        path: file.path.clone(),
                        line: line.number,
                        message: "SplitMix64 seeded from a non-literal expression; derive \
                                  streams from a literal seed (e.g. `SplitMix64::new(0x…)\
                                  .split(id)`) so runs replay byte-identically"
                            .to_string(),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::ItemIndex;

    fn cross(sources: &[(&str, &str)]) -> CrossReport {
        let files: Vec<SourceFile> =
            sources.iter().map(|(p, s)| SourceFile::from_source(*p, s)).collect();
        let index = ItemIndex::build(&files);
        lint_crossfile(&files, &index)
    }

    fn rule_lines(r: &CrossReport, rule: &str) -> Vec<usize> {
        r.findings.iter().filter(|f| f.rule == rule).map(|f| f.line).collect()
    }

    #[test]
    fn receiver_roots() {
        let c = "self.noc1_rep[ki].try_inject(pkt)";
        assert_eq!(receiver_root(c, c.find(".try_inject").unwrap()).as_deref(), Some("self"));
        let c = "bars[d].inject(pkt)";
        assert_eq!(receiver_root(c, c.find(".inject").unwrap()).as_deref(), Some("bars"));
        let c = "x.crossbars[i].inject_batch(b)";
        assert_eq!(receiver_root(c, c.find(".inject_batch").unwrap()).as_deref(), Some("x"));
        // rustfmt-wrapped chain: receiver on the previous line.
        let c = "self.noc1_rep[ki]\n            .try_inject(pkt)";
        assert_eq!(receiver_root(c, c.find(".try_inject").unwrap()).as_deref(), Some("self"));
        let c = "let q = mk();\n        q.inject(p)";
        assert_eq!(receiver_root(c, c.find(".inject").unwrap()).as_deref(), Some("q"));
    }

    #[test]
    fn epoch_order_accepts_wrapped_self_chain() {
        let src = "pub fn region_mem(d: &mut D) {\n    d.step();\n}\n\
                   impl D {\n    pub fn step(&mut self) {\n        self.noc1_rep[0]\n            .try_inject(p)\n            .unwrap();\n    }\n}\n";
        let r = cross(&[("crates/dcl1/src/w.rs", src)]);
        assert!(rule_lines(&r, "epoch_order").is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn shared_state_atomic_needs_uppercase_follow() {
        assert!(shared_state_token("MemKind::Atomic | MemKind::Aux => {").is_none());
        assert!(shared_state_token("counter: AtomicU64,").is_some());
        assert!(shared_state_token("stop: AtomicBool,").is_some());
    }

    #[test]
    fn shared_state_reachable_from_region_fires() {
        let region = "pub fn region_mem(d: &mut D) {\n    helper(d);\n}\n";
        let helper = "pub fn helper(d: &mut D) {\n    let guard = d.lock.lock();\n    let m: Mutex<u64> = Mutex::new(0);\n}\n";
        let r = cross(&[("crates/mem/src/a.rs", region), ("crates/mem/src/b.rs", helper)]);
        assert_eq!(rule_lines(&r, "shard_shared_state"), [3]);
    }

    #[test]
    fn shard_pool_and_resilience_are_sanctioned() {
        let pool = "pub struct ShardPool {\n    slots: Vec<Arc<Slot>>,\n}\n\
                    pub struct Slot {\n    job: Mutex<Option<Job>>,\n    done: AtomicBool,\n}\n\
                    impl ShardPool {\n    pub fn region_helper(&self) {\n        self.slots[0].job.lock();\n    }\n}\n";
        let r = cross(&[("crates/dcl1/src/pool.rs", pool)]);
        assert!(rule_lines(&r, "shard_shared_state").is_empty(), "{:?}", r.findings);

        let res = "pub struct Supervisor {\n    state: Mutex<u64>,\n}\n\
                   pub fn region_retry() {\n    let x: AtomicU64 = AtomicU64::new(0);\n}\n";
        let r = cross(&[("crates/resilience/src/sup.rs", res)]);
        assert!(rule_lines(&r, "shard_shared_state").is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn unreachable_shared_state_does_not_fire() {
        let src = "pub fn coordinator_only() {\n    let m: Mutex<u64> = Mutex::new(0);\n}\n";
        let r = cross(&[("crates/dcl1/src/m.rs", src)]);
        assert!(rule_lines(&r, "shard_shared_state").is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn struct_field_shared_state_fires() {
        let src = "pub struct Domain {\n    pub counter: AtomicU64,\n}\n";
        let r = cross(&[("crates/noc/src/d.rs", src)]);
        assert_eq!(rule_lines(&r, "shard_shared_state"), [2]);
    }

    #[test]
    fn epoch_order_flags_non_self_inject_in_region() {
        let src = "pub fn region_noc1(d: &mut D, other: &X) {\n    other.bar.try_inject(p);\n    d.go();\n}\n\
                   impl D {\n    pub fn go(&mut self) {\n        self.local[0].try_inject(q);\n    }\n}\n";
        let r = cross(&[("crates/noc/src/r.rs", src)]);
        assert_eq!(rule_lines(&r, "epoch_order"), [2]);
    }

    #[test]
    fn epoch_order_skips_crossbar_impls_and_unreachable() {
        let src = "impl Crossbar {\n    pub fn region_feed(&mut self, x: &B) {\n        x.port.inject(p);\n    }\n}\n";
        let r = cross(&[("crates/noc/src/c.rs", src)]);
        assert!(rule_lines(&r, "epoch_order").is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn merge_float_subtraction_fires() {
        let src = "impl Acc {\n    pub fn merge(&mut self, o: &Acc) {\n        let wmean: f64 = 0.0;\n        let delta = o.wmean - wmean;\n    }\n}\n";
        let r = cross(&[("crates/obs/src/acc.rs", src)]);
        assert_eq!(rule_lines(&r, "merge_commutative"), [4]);
    }

    #[test]
    fn merge_unsorted_map_iteration_fires_and_sorted_passes() {
        let bad = "pub struct T {\n    counts: FlatMap<u32>,\n}\n\
                   impl T {\n    pub fn merge_into(&mut self, o: &T) {\n        for k in o.counts.keys() { self.add(k); }\n    }\n\
                   pub fn counts(&self) -> &FlatMap<u32> { &self.counts }\n}\n";
        // `merge_into` ends with `_into`, not `_merge` — use a firing name.
        let bad = bad.replace("merge_into", "merge_counts");
        let r = cross(&[("crates/obs/src/t.rs", bad.as_str())]);
        assert_eq!(rule_lines(&r, "merge_commutative"), [6], "{:?}", r.findings);

        let good = bad.replace("o.counts.keys()", "o.counts.sorted_keys()");
        let r = cross(&[("crates/obs/src/t.rs", good.as_str())]);
        assert!(rule_lines(&r, "merge_commutative").is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn merge_enumerate_indexed_write_fires() {
        let src = "pub fn table_merge(dst: &mut [u64], src: &[u64]) {\n    for (i, v) in src.iter().enumerate() {\n        dst[i] = dst[i].max(*v);\n    }\n}\n";
        let r = cross(&[("crates/mem/src/t.rs", src)]);
        assert_eq!(rule_lines(&r, "merge_commutative"), [3], "{:?}", r.findings);
    }

    #[test]
    fn stats_rs_merge_is_exempt() {
        let src = "impl RunningMean {\n    pub fn merge(&mut self, o: &Self) {\n        let wmean: f64 = 0.0;\n        let d = o.wmean - wmean;\n    }\n}\n";
        let r = cross(&[("crates/common/src/stats.rs", src)]);
        assert!(rule_lines(&r, "merge_commutative").is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn unsorted_iteration_in_sink_fires_and_sorted_passes() {
        let bad = "pub struct Reg {\n    vals: FlatMap<u64>,\n}\n\
                   impl Reg {\n    pub fn snapshot(&self) -> Vec<u64> {\n        self.vals.values().copied().collect()\n    }\n}\n";
        let r = cross(&[("crates/obs/src/reg.rs", bad)]);
        assert_eq!(rule_lines(&r, "unsorted_iteration"), [6], "{:?}", r.findings);

        let good = bad.replace(
            "self.vals.values().copied().collect()",
            "self.vals.sorted_keys().map(|k| self.vals[k]).collect()",
        );
        let r = cross(&[("crates/obs/src/reg.rs", good.as_str())]);
        assert!(rule_lines(&r, "unsorted_iteration").is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn non_sink_fn_iteration_is_ignored() {
        let src = "pub struct Reg {\n    vals: FlatMap<u64>,\n}\n\
                   impl Reg {\n    pub fn total(&self) -> u64 {\n        self.vals.values().sum()\n    }\n}\n";
        let r = cross(&[("crates/obs/src/reg.rs", src)]);
        assert!(rule_lines(&r, "unsorted_iteration").is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn rng_source_fires_on_entropy_and_non_literal_seed() {
        let src = "pub fn setup(seed: u64) {\n    let h = RandomState::new();\n    let r = SplitMix64::new(seed);\n    let ok = SplitMix64::new(0xA99_5EED).split(seed);\n}\n";
        let r = cross(&[("crates/gpu/src/s.rs", src)]);
        assert_eq!(rule_lines(&r, "rng_source"), [2, 3], "{:?}", r.findings);
    }

    #[test]
    fn rng_source_ignores_common_and_tests() {
        let src = "pub fn seeded() {\n    let r = SplitMix64::new(mix(self.seed));\n}\n";
        let r = cross(&[("crates/common/src/rng.rs", src)]);
        assert!(rule_lines(&r, "rng_source").is_empty(), "{:?}", r.findings);

        let test_src = "#[cfg(test)]\nmod tests {\n    fn t() { let r = SplitMix64::new(derive()); }\n}\n";
        let r = cross(&[("crates/dcl1/src/x.rs", test_src)]);
        assert!(rule_lines(&r, "rng_source").is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn crossfile_findings_honor_allows() {
        let src = "pub struct Domain {\n    // simcheck: allow(shard_shared_state): read-only after init\n    pub counter: AtomicU64,\n}\n";
        let r = cross(&[("crates/noc/src/d.rs", src)]);
        assert!(rule_lines(&r, "shard_shared_state").is_empty(), "{:?}", r.findings);
        assert_eq!(r.suppressed, 1);

        let no_reason = "pub struct Domain {\n    pub counter: AtomicU64, // simcheck: allow(shard_shared_state)\n}\n";
        let r = cross(&[("crates/noc/src/d.rs", no_reason)]);
        assert_eq!(r.findings.len(), 1);
        assert!(r.findings[0].message.contains("reason"), "{}", r.findings[0].message);
    }
}
