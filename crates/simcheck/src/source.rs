//! A minimal Rust source scanner: comment/string stripping, `#[cfg(test)]`
//! block detection, and `// simcheck: allow(rule): reason` annotations.
//!
//! This is deliberately a lexer, not a parser — the rules in
//! [`crate::rules`] are lexical patterns, and a hand-rolled scanner keeps
//! the crate dependency-free (the build environment is hermetic; no `syn`).

use std::path::{Path, PathBuf};

/// One scanned line of a source file.
#[derive(Debug, Clone)]
pub struct Line {
    /// 1-based line number.
    pub number: usize,
    /// The line with comments removed and string/char-literal contents
    /// blanked to spaces (quotes kept, so code structure survives).
    pub code: String,
    /// The original line, verbatim — rules that inspect string-literal
    /// *contents* (e.g. `metric_names`) read this after confirming the
    /// call shape in `code`.
    pub raw: String,
    /// Concatenated comment text on this line (for annotations).
    pub comment: String,
    /// Whether the line sits inside a `#[cfg(test)]`-gated block.
    pub in_test: bool,
}

/// A scanned source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path the file was loaded from (or labeled with, for fixtures).
    pub path: PathBuf,
    /// Scanned lines, in order.
    pub lines: Vec<Line>,
}

/// A `simcheck: allow(...)` annotation found in a comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// The rule name inside the parentheses.
    pub rule: String,
    /// Whether a non-empty `: reason` followed the closing parenthesis.
    pub has_reason: bool,
}

impl SourceFile {
    /// Scans `text`, labeling it as `path`.
    pub fn from_source(path: impl Into<PathBuf>, text: &str) -> SourceFile {
        let (scrubbed, comments) = scrub(text);
        let in_test = test_lines(&scrubbed);
        let raw_lines: Vec<&str> = text.lines().collect();
        let lines = scrubbed
            .lines()
            .enumerate()
            .map(|(i, code)| Line {
                number: i + 1,
                code: code.to_string(),
                raw: raw_lines.get(i).map(|s| (*s).to_string()).unwrap_or_default(),
                comment: comments.get(i).cloned().unwrap_or_default(),
                in_test: in_test.get(i).copied().unwrap_or(false),
            })
            .collect();
        SourceFile { path: path.into(), lines }
    }

    /// Reads and scans the file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying read error.
    pub fn load(path: &Path) -> std::io::Result<SourceFile> {
        let text = std::fs::read_to_string(path)?;
        Ok(SourceFile::from_source(path, &text))
    }

    /// All annotations on the given 1-based line.
    pub fn allows_on(&self, number: usize) -> Vec<Allow> {
        self.lines
            .get(number.wrapping_sub(1))
            .map(|l| parse_allows(&l.comment))
            .unwrap_or_default()
    }
}

/// Extracts every `simcheck: allow(rule)[: reason]` from comment text.
pub fn parse_allows(comment: &str) -> Vec<Allow> {
    const MARKER: &str = "simcheck: allow(";
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(pos) = rest.find(MARKER) {
        let after = &rest[pos + MARKER.len()..];
        let Some(close) = after.find(')') else { break };
        let rule = after[..close].trim().to_string();
        let tail = after[close + 1..].trim_start();
        let has_reason = tail
            .strip_prefix(':')
            .is_some_and(|r| !r.trim().is_empty());
        out.push(Allow { rule, has_reason });
        rest = &after[close + 1..];
    }
    out
}

/// Strips comments and blanks string/char-literal contents, preserving the
/// line structure. Returns the scrubbed text and per-line comment text.
fn scrub(text: &str) -> (String, Vec<String>) {
    let chars: Vec<char> = text.chars().collect();
    let mut code = String::with_capacity(text.len());
    let mut comments: Vec<String> = vec![String::new()];
    let mut i = 0;
    let push_nl = |code: &mut String, comments: &mut Vec<String>| {
        code.push('\n');
        comments.push(String::new());
    };
    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                push_nl(&mut code, &mut comments);
                i += 1;
            }
            '/' if chars.get(i + 1) == Some(&'/') => {
                i += 2;
                while i < chars.len() && chars[i] != '\n' {
                    comments.last_mut().expect("line").push(chars[i]);
                    i += 1;
                }
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                let mut depth = 1usize;
                i += 2;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if chars[i] == '\n' {
                            push_nl(&mut code, &mut comments);
                        } else {
                            comments.last_mut().expect("line").push(chars[i]);
                        }
                        i += 1;
                    }
                }
            }
            '"' => {
                code.push('"');
                i += 1;
                while i < chars.len() {
                    match chars[i] {
                        '\\' => {
                            code.push(' ');
                            if i + 1 < chars.len() {
                                code.push(if chars[i + 1] == '\n' { '\n' } else { ' ' });
                            }
                            if chars.get(i + 1) == Some(&'\n') {
                                comments.push(String::new());
                            }
                            i += 2;
                        }
                        '"' => {
                            code.push('"');
                            i += 1;
                            break;
                        }
                        '\n' => {
                            push_nl(&mut code, &mut comments);
                            i += 1;
                        }
                        _ => {
                            code.push(' ');
                            i += 1;
                        }
                    }
                }
            }
            'r' | 'b' | 'c'
                if !prev_is_ident(&chars, i)
                    && raw_or_byte_string_len(&chars[i..]).is_some() =>
            {
                let (prefix_len, hashes) = raw_or_byte_string_len(&chars[i..]).expect("probe");
                for _ in 0..prefix_len {
                    code.push(' ');
                }
                code.push('"');
                i += prefix_len + 1;
                // Scan to the closing quote followed by `hashes` '#'s (or a
                // bare quote for non-raw byte/C strings, honoring escapes).
                if hashes == usize::MAX {
                    while i < chars.len() {
                        match chars[i] {
                            '\\' => {
                                code.push(' ');
                                if chars.get(i + 1) == Some(&'\n') {
                                    push_nl(&mut code, &mut comments);
                                } else if i + 1 < chars.len() {
                                    code.push(' ');
                                }
                                i += 2;
                            }
                            '"' => {
                                code.push('"');
                                i += 1;
                                break;
                            }
                            '\n' => {
                                push_nl(&mut code, &mut comments);
                                i += 1;
                            }
                            _ => {
                                code.push(' ');
                                i += 1;
                            }
                        }
                    }
                } else {
                    while i < chars.len() {
                        if chars[i] == '"' && chars[i + 1..].iter().take(hashes).filter(|&&h| h == '#').count() == hashes {
                            code.push('"');
                            for _ in 0..hashes {
                                code.push(' ');
                            }
                            i += 1 + hashes;
                            break;
                        }
                        if chars[i] == '\n' {
                            push_nl(&mut code, &mut comments);
                        } else {
                            code.push(' ');
                        }
                        i += 1;
                    }
                }
            }
            '\'' => {
                // Char literal vs. lifetime: a literal is 'x' or '\...'.
                let is_char = chars.get(i + 1) == Some(&'\\')
                    || (chars.get(i + 2) == Some(&'\'') && chars.get(i + 1) != Some(&'\''));
                if is_char {
                    code.push('\'');
                    i += 1;
                    while i < chars.len() {
                        match chars[i] {
                            '\\' => {
                                code.push(' ');
                                if i + 1 < chars.len() {
                                    code.push(' ');
                                }
                                i += 2;
                            }
                            '\'' => {
                                code.push('\'');
                                i += 1;
                                break;
                            }
                            _ => {
                                code.push(' ');
                                i += 1;
                            }
                        }
                    }
                } else {
                    code.push('\'');
                    i += 1;
                }
            }
            _ => {
                code.push(c);
                i += 1;
            }
        }
    }
    (code, comments)
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// If `rest` starts a raw/byte/C string literal (`r"`, `r#"`, `br#"`,
/// `b"`, `c"`, …), returns `(prefix_len_before_quote, hash_count)`;
/// `hash_count == usize::MAX` marks a non-raw (escape-honoring) literal.
fn raw_or_byte_string_len(rest: &[char]) -> Option<(usize, usize)> {
    let mut raw = false;
    let j = match rest.first()? {
        'r' => {
            raw = true;
            1
        }
        'b' | 'c' => {
            if rest.get(1) == Some(&'r') {
                raw = true;
                2
            } else {
                1
            }
        }
        _ => return None,
    };
    let mut hashes = 0;
    while rest.get(j + hashes) == Some(&'#') {
        hashes += 1;
    }
    if rest.get(j + hashes) == Some(&'"') {
        if raw {
            Some((j + hashes, hashes))
        } else if hashes == 0 {
            Some((j, usize::MAX))
        } else {
            None
        }
    } else {
        None
    }
}

/// Marks the lines covered by `#[cfg(test)]`-gated blocks in scrubbed text.
fn test_lines(scrubbed: &str) -> Vec<bool> {
    let n_lines = scrubbed.lines().count();
    let mut flags = vec![false; n_lines.max(1)];
    let markers: Vec<usize> = scrubbed.match_indices("#[cfg(test)]").map(|(p, _)| p).collect();
    let mut next_marker = 0usize;
    let mut line = 0usize;
    let mut depth = 0usize;
    let mut pending = false;
    let mut test_exit_depth: Option<usize> = None;
    for (pos, c) in scrubbed.char_indices() {
        if next_marker < markers.len() && pos == markers[next_marker] {
            pending = true;
            next_marker += 1;
        }
        if test_exit_depth.is_some() {
            if let Some(f) = flags.get_mut(line) {
                *f = true;
            }
        }
        match c {
            '{' => {
                if pending {
                    // This brace opens the gated item (mod or fn).
                    test_exit_depth = test_exit_depth.or(Some(depth));
                    pending = false;
                }
                depth += 1;
            }
            '}' => {
                depth = depth.saturating_sub(1);
                if test_exit_depth == Some(depth) {
                    test_exit_depth = None;
                }
            }
            ';' if pending && test_exit_depth.is_none() => {
                // `#[cfg(test)] use …;` — gates a single statement, not a
                // block; nothing to skip.
                pending = false;
            }
            '\n' => line += 1,
            _ => {}
        }
    }
    flags
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(f: &SourceFile) -> Vec<&str> {
        f.lines.iter().map(|l| l.code.as_str()).collect()
    }

    #[test]
    fn comments_are_stripped_and_captured() {
        let f = SourceFile::from_source("x.rs", "let a = 1; // HashMap here\nlet b = 2;");
        assert_eq!(codes(&f), ["let a = 1; ", "let b = 2;"]);
        assert!(f.lines[0].comment.contains("HashMap"));
    }

    #[test]
    fn string_contents_are_blanked() {
        let f = SourceFile::from_source("x.rs", "let s = \"HashMap::new()\";");
        assert!(!f.lines[0].code.contains("HashMap"));
        assert!(f.lines[0].code.contains('"'));
    }

    #[test]
    fn raw_strings_and_char_literals_scan() {
        let f = SourceFile::from_source(
            "x.rs",
            "let r = r#\"Instant \" inside\"#;\nlet c = 'x';\nfn f<'a>(v: &'a u8) {}",
        );
        assert!(!f.lines[0].code.contains("Instant"));
        assert!(f.lines[2].code.contains("<'a>"), "{:?}", f.lines[2].code);
    }

    #[test]
    fn block_comments_span_lines() {
        let f = SourceFile::from_source("x.rs", "a /* x\ny */ b");
        assert_eq!(codes(&f), ["a ", " b"]);
    }

    #[test]
    fn cfg_test_mod_is_marked() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() { let m = 1; }\n}\nfn tail() {}\n";
        let f = SourceFile::from_source("x.rs", src);
        let in_test: Vec<bool> = f.lines.iter().map(|l| l.in_test).collect();
        // The `mod tests {` line is marked from its opening brace onward.
        assert_eq!(in_test, [false, false, true, true, true, false]);
    }

    #[test]
    fn cfg_test_use_does_not_gate_rest_of_file() {
        let src = "#[cfg(test)]\nuse std::x;\nfn prod() { body(); }\n";
        let f = SourceFile::from_source("x.rs", src);
        assert!(f.lines.iter().all(|l| !l.in_test));
    }

    #[test]
    fn allows_parse_with_and_without_reason() {
        let a = parse_allows(" simcheck: allow(hash_order): tiny fixed map");
        assert_eq!(a, [Allow { rule: "hash_order".into(), has_reason: true }]);
        let b = parse_allows(" simcheck: allow(wall_clock)");
        assert_eq!(b, [Allow { rule: "wall_clock".into(), has_reason: false }]);
    }
}
