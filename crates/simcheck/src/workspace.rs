//! Workspace discovery: which files the lint scans.

use std::path::{Path, PathBuf};

/// Locates the workspace root: `--root` when given, else the nearest
/// ancestor of the current directory containing both `Cargo.toml` and
/// `crates/`.
///
/// # Errors
///
/// Returns a message when no ancestor qualifies.
pub fn find_root(explicit: Option<&Path>) -> Result<PathBuf, String> {
    if let Some(r) = explicit {
        return Ok(r.to_path_buf());
    }
    let cwd = std::env::current_dir().map_err(|e| format!("cwd: {e}"))?;
    let mut dir = cwd.as_path();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Ok(dir.to_path_buf());
        }
        match dir.parent() {
            Some(p) => dir = p,
            None => return Err(format!("no workspace root above {}", cwd.display())),
        }
    }
}

/// Every production source file the lint scans: `src/` trees of all
/// workspace crates plus the root package, excluding `simcheck` itself
/// (the linter is not sim state) and any `tests/` / `benches/` trees.
pub fn source_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    collect_rs(&root.join("src"), &mut out);
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        let mut crates: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
        crates.sort();
        for krate in crates {
            if krate.file_name().is_some_and(|n| n == "simcheck") {
                continue;
            }
            collect_rs(&krate.join("src"), &mut out);
        }
    }
    out.sort();
    out
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or_default();
            if name == "tests" || name == "benches" || name == "target" {
                continue;
            }
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}
