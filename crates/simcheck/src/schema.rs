//! The `stats_schema` rule: `dcl1::stats::RunStats` is serialized into the
//! on-disk memo (`target/dcl1-cache/`), so its field list, the bench
//! runner's `CACHE_SCHEMA_VERSION`, and the deserializer's field-count
//! guard must move together. The committed `simcheck.lock` pins the last
//! reviewed combination; `cargo run -p simcheck -- schema --update`
//! refreshes it after a deliberate change.

use crate::rules::Finding;
use std::path::{Path, PathBuf};

/// Relative path of the stats definition.
pub const STATS_PATH: &str = "crates/dcl1/src/stats.rs";
/// Relative path of the memoizing runner.
pub const RUNNER_PATH: &str = "crates/bench/src/runner.rs";
/// Relative path of the lock file.
pub const LOCK_PATH: &str = "simcheck.lock";

/// What the working tree currently says.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchemaState {
    /// FNV-1a over `RunStats`'s `name:type` field list.
    pub fingerprint: u64,
    /// Number of `pub` fields in `RunStats`.
    pub field_count: usize,
    /// `CACHE_SCHEMA_VERSION` in the runner.
    pub cache_version: u32,
    /// The `seen == N` literal in the runner's deserializer.
    pub seen_guard: Option<usize>,
}

/// The committed lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lock {
    /// Fingerprint at last review.
    pub fingerprint: u64,
    /// Field count at last review.
    pub field_count: usize,
    /// Cache version at last review.
    pub cache_version: u32,
}

/// Reads the current schema state from the working tree.
///
/// # Errors
///
/// Returns a description of the file or pattern that failed to resolve.
pub fn read_state(root: &Path) -> Result<SchemaState, String> {
    let stats = std::fs::read_to_string(root.join(STATS_PATH))
        .map_err(|e| format!("{STATS_PATH}: {e}"))?;
    let runner = std::fs::read_to_string(root.join(RUNNER_PATH))
        .map_err(|e| format!("{RUNNER_PATH}: {e}"))?;
    let (fingerprint, field_count) = fingerprint_stats(&stats)
        .ok_or_else(|| format!("{STATS_PATH}: `pub struct RunStats` not found"))?;
    let cache_version = parse_cache_version(&runner)
        .ok_or_else(|| format!("{RUNNER_PATH}: `CACHE_SCHEMA_VERSION` not found"))?;
    Ok(SchemaState { fingerprint, field_count, cache_version, seen_guard: parse_seen_guard(&runner) })
}

/// FNV-1a fingerprint and field count of the `RunStats` struct in
/// `stats.rs` source text. Comments are stripped first, so doc edits do
/// not change the fingerprint; field renames, retypes, reorders, adds,
/// and removals all do.
pub fn fingerprint_stats(src: &str) -> Option<(u64, usize)> {
    let file = crate::source::SourceFile::from_source("stats.rs", src);
    let code: String =
        file.lines.iter().map(|l| l.code.as_str()).collect::<Vec<_>>().join("\n");
    let start = code.find("pub struct RunStats {")?;
    let body_start = start + code[start..].find('{')?;
    let mut depth = 0usize;
    let mut end = body_start;
    for (i, c) in code[body_start..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    end = body_start + i;
                    break;
                }
            }
            _ => {}
        }
    }
    let mut hash = Fnv64::new();
    let mut count = 0usize;
    for line in code[body_start..end].lines() {
        let t = line.trim();
        let Some(rest) = t.strip_prefix("pub ") else { continue };
        let Some((name, ty)) = rest.split_once(':') else { continue };
        let name = name.trim();
        if name.contains('(') || name.is_empty() {
            continue; // `pub fn` etc. cannot appear in a struct body; be safe anyway
        }
        let ty = ty.trim().trim_end_matches(',').trim();
        hash.write(name.as_bytes());
        hash.write(b":");
        hash.write(ty.as_bytes());
        hash.write(b"\n");
        count += 1;
    }
    Some((hash.finish(), count))
}

/// Extracts `const CACHE_SCHEMA_VERSION: u32 = N`.
pub fn parse_cache_version(runner_src: &str) -> Option<u32> {
    let at = runner_src.find("CACHE_SCHEMA_VERSION: u32 =")?;
    runner_src[at..]
        .split('=')
        .nth(1)?
        .trim()
        .split(';')
        .next()?
        .trim()
        .parse()
        .ok()
}

/// Extracts the deserializer's `seen == N` field-count guard.
pub fn parse_seen_guard(runner_src: &str) -> Option<usize> {
    let at = runner_src.find("seen == ")?;
    runner_src[at + "seen == ".len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .ok()
}

/// Parses a lock file.
pub fn parse_lock(text: &str) -> Option<Lock> {
    let mut fingerprint = None;
    let mut field_count = None;
    let mut cache_version = None;
    for line in text.lines() {
        let line = line.trim();
        if let Some(v) = line.strip_prefix("run_stats_fingerprint = ") {
            fingerprint = u64::from_str_radix(v.trim().trim_start_matches("0x"), 16).ok();
        } else if let Some(v) = line.strip_prefix("run_stats_fields = ") {
            field_count = v.trim().parse().ok();
        } else if let Some(v) = line.strip_prefix("cache_schema_version = ") {
            cache_version = v.trim().parse().ok();
        }
    }
    Some(Lock {
        fingerprint: fingerprint?,
        field_count: field_count?,
        cache_version: cache_version?,
    })
}

/// Renders the lock for the given state, including the rule census: the
/// enabled rule set is part of the reviewed surface, so a rule silently
/// dropped (or added without review) shows up as a lock diff.
pub fn render_lock(state: &SchemaState) -> String {
    format!(
        "# simcheck stats-schema lock — do not edit by hand.\n\
         # Regenerate after a reviewed RunStats/cache/rule change with:\n\
         #   cargo run -p simcheck -- schema --update\n\
         run_stats_fingerprint = {:#018x}\n\
         run_stats_fields = {}\n\
         cache_schema_version = {}\n\
         rule_census = {}\n\
         rules = {}\n",
        state.fingerprint,
        state.field_count,
        state.cache_version,
        crate::rules::RULES.len(),
        crate::rules::RULES.join(",")
    )
}

/// Parses the `rules = a,b,c` census line from lock text.
pub fn parse_rule_census(text: &str) -> Option<Vec<String>> {
    for line in text.lines() {
        if let Some(v) = line.trim().strip_prefix("rules = ") {
            return Some(v.split(',').map(|r| r.trim().to_string()).collect());
        }
    }
    None
}

/// Compares the compiled-in rule set against the lock's census. A lock
/// predating the census (or missing entirely) asks for a regeneration;
/// a mismatching census names the drift. Reported under `stats_schema`
/// — the census lives in the same reviewed lock file.
pub fn check_rule_census(lock_text: Option<&str>) -> Vec<Finding> {
    let finding = |message: String| Finding {
        rule: "stats_schema",
        path: PathBuf::from(LOCK_PATH),
        line: 1,
        message,
    };
    let Some(census) = lock_text.and_then(parse_rule_census) else {
        return vec![finding(
            "simcheck.lock carries no rule census; run `cargo run -p simcheck -- schema \
             --update` to pin the reviewed rule set"
                .into(),
        )];
    };
    let mut out = Vec::new();
    for rule in crate::rules::RULES {
        if !census.iter().any(|c| c == rule) {
            out.push(finding(format!(
                "rule `{rule}` is compiled in but absent from the lock's census; review the \
                 rule, then run `cargo run -p simcheck -- schema --update`"
            )));
        }
    }
    for rule in &census {
        if !crate::rules::RULES.contains(&rule.as_str()) {
            out.push(finding(format!(
                "lock census names rule `{rule}` which no longer exists; a rule was dropped \
                 without review — restore it or run `cargo run -p simcheck -- schema --update`"
            )));
        }
    }
    out
}

/// The rule proper: compares the working tree against the lock.
pub fn check_schema(state: &SchemaState, lock: Option<&Lock>) -> Vec<Finding> {
    let mut out = Vec::new();
    let finding = |path: &str, message: String| Finding {
        rule: "stats_schema",
        path: PathBuf::from(path),
        line: 1,
        message,
    };
    match lock {
        None => out.push(finding(
            LOCK_PATH,
            "missing simcheck.lock; run `cargo run -p simcheck -- schema --update`".into(),
        )),
        Some(lock) => {
            if state.fingerprint != lock.fingerprint && state.cache_version == lock.cache_version {
                out.push(finding(
                    STATS_PATH,
                    format!(
                        "RunStats fields changed ({} -> {} fields) without bumping \
                         CACHE_SCHEMA_VERSION (still {}): stale on-disk results would be read \
                         back as the new schema; bump the version in {RUNNER_PATH}, then run \
                         `cargo run -p simcheck -- schema --update`",
                        lock.field_count, state.field_count, state.cache_version
                    ),
                ));
            } else if state.fingerprint != lock.fingerprint || state.cache_version != lock.cache_version {
                out.push(finding(
                    LOCK_PATH,
                    format!(
                        "simcheck.lock is stale (lock v{}, tree v{}); after reviewing the \
                         RunStats/cache change, run `cargo run -p simcheck -- schema --update`",
                        lock.cache_version, state.cache_version
                    ),
                ));
            }
        }
    }
    if let Some(seen) = state.seen_guard {
        if seen != state.field_count {
            out.push(finding(
                RUNNER_PATH,
                format!(
                    "deserializer guard `seen == {seen}` does not match RunStats's {} fields; \
                     cached entries would be silently rejected (or truncated ones accepted)",
                    state.field_count
                ),
            ));
        }
    } else {
        out.push(finding(
            RUNNER_PATH,
            "deserializer field-count guard (`seen == N`) not found".into(),
        ));
    }
    out
}

/// 64-bit FNV-1a (runner.rs carries the 128-bit variant for memo keys;
/// this one only fingerprints source text).
struct Fnv64 {
    state: u64,
}

impl Fnv64 {
    fn new() -> Self {
        Fnv64 { state: 0xcbf2_9ce4_8422_2325 }
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const STATS_A: &str = "pub struct RunStats {\n    /// doc\n    pub cycles: u64,\n    pub ipc: f64,\n}\n";
    const STATS_B: &str = "pub struct RunStats {\n    pub cycles: u64,\n    pub ipc: f64,\n    pub extra: u64,\n}\n";

    fn state(src: &str, ver: u32, seen: usize) -> SchemaState {
        let (fingerprint, field_count) = fingerprint_stats(src).unwrap();
        SchemaState { fingerprint, field_count, cache_version: ver, seen_guard: Some(seen) }
    }

    #[test]
    fn doc_edits_do_not_change_fingerprint() {
        let with_doc = fingerprint_stats(STATS_A).unwrap();
        let no_doc =
            fingerprint_stats("pub struct RunStats {\n    pub cycles: u64,\n    pub ipc: f64,\n}\n")
                .unwrap();
        assert_eq!(with_doc, no_doc);
        assert_eq!(with_doc.1, 2);
    }

    #[test]
    fn matching_lock_is_clean() {
        let s = state(STATS_A, 2, 2);
        let lock = Lock { fingerprint: s.fingerprint, field_count: 2, cache_version: 2 };
        assert!(check_schema(&s, Some(&lock)).is_empty());
    }

    #[test]
    fn field_change_without_version_bump_fails() {
        let old = state(STATS_A, 2, 3);
        let lock = Lock { fingerprint: old.fingerprint, field_count: 2, cache_version: 2 };
        let new = state(STATS_B, 2, 3);
        let findings = check_schema(&new, Some(&lock));
        assert!(
            findings.iter().any(|f| f.message.contains("without bumping CACHE_SCHEMA_VERSION")),
            "{findings:?}"
        );
    }

    #[test]
    fn field_change_with_version_bump_wants_lock_update() {
        let old = state(STATS_A, 2, 3);
        let lock = Lock { fingerprint: old.fingerprint, field_count: 2, cache_version: 2 };
        let new = state(STATS_B, 3, 3);
        let findings = check_schema(&new, Some(&lock));
        assert!(findings.iter().any(|f| f.message.contains("schema --update")), "{findings:?}");
        assert!(
            !findings.iter().any(|f| f.message.contains("without bumping")),
            "a bumped version is the sanctioned path: {findings:?}"
        );
    }

    #[test]
    fn seen_guard_mismatch_fails() {
        let s = state(STATS_A, 2, 7);
        let lock = Lock { fingerprint: s.fingerprint, field_count: 2, cache_version: 2 };
        let findings = check_schema(&s, Some(&lock));
        assert!(findings.iter().any(|f| f.message.contains("seen == 7")), "{findings:?}");
    }

    #[test]
    fn lock_round_trips() {
        let s = state(STATS_A, 5, 2);
        let lock = parse_lock(&render_lock(&s)).unwrap();
        assert_eq!(lock.fingerprint, s.fingerprint);
        assert_eq!(lock.cache_version, 5);
    }

    #[test]
    fn runner_literals_parse() {
        let src = "const CACHE_SCHEMA_VERSION: u32 = 2;\n ... if seen == 29 {";
        assert_eq!(parse_cache_version(src), Some(2));
        assert_eq!(parse_seen_guard(src), Some(29));
    }
}
