//! Pass 1 of the cross-file analysis: a lightweight item index over the
//! scanned workspace — structs with their fields, functions with their
//! enclosing impl type and by-name call edges.
//!
//! Like the scanner in [`crate::source`], this is deliberately a lexer,
//! not a parser: items are recovered from scrubbed lines with a
//! brace-depth scope stack, and call edges are resolved *by name only*.
//! That over-approximates the real call graph (every `fn tick` is one
//! node family), which is exactly the right bias for the safety rules in
//! [`crate::crossfile`] — a rule that walks an over-approximated graph
//! can miss nothing, and the mandatory-reason allow mechanism absorbs the
//! rare false positive.

use crate::source::SourceFile;
use std::collections::BTreeMap;
use std::path::PathBuf;

/// One field of an indexed struct.
#[derive(Debug, Clone)]
pub struct FieldItem {
    /// Field name.
    pub name: String,
    /// The declared type, as source text (trailing comma stripped).
    pub ty: String,
    /// 1-based line of the declaration.
    pub line: usize,
}

/// One struct definition.
#[derive(Debug, Clone)]
pub struct StructItem {
    /// Struct name.
    pub name: String,
    /// File the struct is defined in (workspace-relative).
    pub path: PathBuf,
    /// Crate label (`crates/<name>/…` → `name`, root `src/` → `root`).
    pub krate: String,
    /// 1-based line of the `struct` header.
    pub line: usize,
    /// Named fields, in declaration order (empty for tuple/unit structs).
    pub fields: Vec<FieldItem>,
    /// Whether the definition sits inside a `#[cfg(test)]` block.
    pub in_test: bool,
}

/// One function definition.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// The `impl` type the function belongs to, if any (`impl Trait for
    /// T` resolves to `T`).
    pub impl_type: Option<String>,
    /// File the function is defined in (workspace-relative).
    pub path: PathBuf,
    /// Crate label.
    pub krate: String,
    /// 1-based first line of the body (the line carrying the opening
    /// brace).
    pub start_line: usize,
    /// 1-based last line of the body.
    pub end_line: usize,
    /// Callee names referenced in the body, deduplicated, in first-use
    /// order. Names only: `self.tick()` and `Crossbar::tick(x)` both
    /// contribute `tick`.
    pub calls: Vec<String>,
    /// Whether the definition sits inside a `#[cfg(test)]` block.
    pub in_test: bool,
}

/// The workspace item index.
#[derive(Debug, Default)]
pub struct ItemIndex {
    /// Every indexed function.
    pub fns: Vec<FnItem>,
    /// Every indexed struct.
    pub structs: Vec<StructItem>,
    by_fn_name: BTreeMap<String, Vec<usize>>,
}

impl ItemIndex {
    /// Builds the index over a set of scanned files.
    pub fn build(files: &[SourceFile]) -> ItemIndex {
        let mut idx = ItemIndex::default();
        for file in files {
            index_file(file, &mut idx);
        }
        for (i, f) in idx.fns.iter().enumerate() {
            idx.by_fn_name.entry(f.name.clone()).or_default().push(i);
        }
        idx
    }

    /// Indices of every function named `name`, across all files.
    pub fn fns_named(&self, name: &str) -> &[usize] {
        self.by_fn_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The struct named `name`, preferring a definition in `krate` when
    /// several crates define the name.
    pub fn struct_named(&self, name: &str, krate: &str) -> Option<&StructItem> {
        let mut fallback = None;
        for s in &self.structs {
            if s.name == name {
                if s.krate == krate {
                    return Some(s);
                }
                fallback.get_or_insert(s);
            }
        }
        fallback
    }
}

/// Crate label for a workspace-relative path.
pub fn crate_of(path: &std::path::Path) -> String {
    let p = path.to_string_lossy().replace('\\', "/");
    if let Some(rest) = p.split("crates/").nth(1) {
        if let Some((name, _)) = rest.split_once('/') {
            return name.to_string();
        }
    }
    "root".to_string()
}

/// What kind of item an opening brace introduced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScopeKind {
    /// `impl … {` — carries an index into a side table of impl types.
    Impl,
    /// `fn … {` — carries the index into `idx.fns`.
    Fn,
    /// `struct … {` — carries the index into `idx.structs`.
    Struct,
    /// Anything else: blocks, match arms, struct literals, enums, mods.
    Other,
}

#[derive(Debug)]
struct Scope {
    kind: ScopeKind,
    /// Index into the side table matching `kind` (unused for `Other`).
    item: usize,
    /// Brace depth *after* this scope opened.
    depth: usize,
}

/// Keywords that look like calls lexically but are not.
const CALL_KEYWORDS: [&str; 14] = [
    "if", "while", "for", "match", "return", "loop", "let", "else", "move", "in", "as",
    "unsafe", "async", "fn",
];

fn index_file(file: &SourceFile, idx: &mut ItemIndex) {
    let krate = crate_of(&file.path);
    let mut depth = 0usize;
    let mut header = String::new();
    let mut scopes: Vec<Scope> = Vec::new();
    let mut impl_types: Vec<Option<String>> = Vec::new();

    for line in &file.lines {
        // Attribute lines never open item scopes and often contain
        // brackets that confuse header classification; skip them whole.
        let trimmed = line.code.trim_start();
        if trimmed.starts_with("#[") || trimmed.starts_with("#!") {
            continue;
        }
        // A fn whose scope closes on this line (single-line bodies, or
        // trailing expressions on the `}` line) — its text still belongs
        // to that fn even though the scope is popped before attribution.
        let mut popped_fn: Option<usize> = None;
        for c in line.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    let scope = classify_header(&header, line, file, &krate, &scopes, idx,
                        &mut impl_types, depth);
                    scopes.push(scope);
                    header.clear();
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    while scopes.last().is_some_and(|s| s.depth > depth) {
                        let s = scopes.pop().expect("checked last");
                        if s.kind == ScopeKind::Fn {
                            idx.fns[s.item].end_line = line.number;
                            popped_fn = Some(s.item);
                        }
                    }
                    header.clear();
                }
                ';' => header.clear(),
                _ => header.push(c),
            }
        }
        header.push(' ');

        // Attribute body lines to the innermost enclosing item.
        match innermost_item(&scopes) {
            Some((ScopeKind::Fn, item)) => {
                collect_calls(&line.code, &mut idx.fns[item].calls);
            }
            Some((ScopeKind::Struct, item)) => {
                if let Some(field) = parse_field(&line.code, line.number) {
                    idx.structs[item].fields.push(field);
                }
            }
            _ => {
                if let Some(item) = popped_fn {
                    collect_calls(&line.code, &mut idx.fns[item].calls);
                }
            }
        }
    }
    // Unterminated scopes (truncated fixture text): close at EOF.
    let last = file.lines.last().map_or(0, |l| l.number);
    for s in scopes {
        if s.kind == ScopeKind::Fn {
            idx.fns[s.item].end_line = last;
        }
    }
}

/// The innermost `Fn` or `Struct` scope, if any (a `fn` nested in a `fn`
/// attributes to the inner one; struct literals inside fns are `Other`
/// and fall through to the fn).
fn innermost_item(scopes: &[Scope]) -> Option<(ScopeKind, usize)> {
    scopes
        .iter()
        .rev()
        .find(|s| matches!(s.kind, ScopeKind::Fn | ScopeKind::Struct))
        .map(|s| (s.kind, s.item))
}

#[expect(clippy::too_many_arguments)] // one-shot helper for index_file only
fn classify_header(
    header: &str,
    line: &crate::source::Line,
    file: &SourceFile,
    krate: &str,
    scopes: &[Scope],
    idx: &mut ItemIndex,
    impl_types: &mut Vec<Option<String>>,
    depth: usize,
) -> Scope {
    // `fn` first: signatures like `fn f(x: impl FnMut(…))` contain both
    // keywords, and the `fn` is the item being declared.
    if let Some(name) = ident_after_keyword(header, "fn") {
        let impl_type = scopes
            .iter()
            .rev()
            .find(|s| s.kind == ScopeKind::Impl)
            .and_then(|s| impl_types[s.item].clone());
        idx.fns.push(FnItem {
            name,
            impl_type,
            path: file.path.clone(),
            krate: krate.to_string(),
            start_line: line.number,
            end_line: line.number,
            calls: Vec::new(),
            in_test: line.in_test,
        });
        return Scope { kind: ScopeKind::Fn, item: idx.fns.len() - 1, depth };
    }
    if has_keyword(header, "impl") {
        impl_types.push(parse_impl_type(header));
        return Scope { kind: ScopeKind::Impl, item: impl_types.len() - 1, depth };
    }
    if let Some(name) = ident_after_keyword(header, "struct") {
        idx.structs.push(StructItem {
            name,
            path: file.path.clone(),
            krate: krate.to_string(),
            line: line.number,
            fields: Vec::new(),
            in_test: line.in_test,
        });
        return Scope { kind: ScopeKind::Struct, item: idx.structs.len() - 1, depth };
    }
    Scope { kind: ScopeKind::Other, item: 0, depth }
}

/// Whether `header` contains `word` with identifier boundaries.
fn has_keyword(header: &str, word: &str) -> bool {
    let mut search = 0;
    while let Some(rel) = header[search..].find(word) {
        let at = search + rel;
        search = at + word.len();
        let before_ok = at == 0
            || !header[..at].chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after_ok = !header[at + word.len()..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
    }
    false
}

/// The identifier following the first boundary-matched `word` in
/// `header`, e.g. `pub fn tick(` with `fn` → `tick`.
fn ident_after_keyword(header: &str, word: &str) -> Option<String> {
    let mut search = 0;
    while let Some(rel) = header[search..].find(word) {
        let at = search + rel;
        search = at + word.len();
        let before_ok = at == 0
            || !header[..at].chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_');
        let rest = &header[at + word.len()..];
        if !before_ok || rest.chars().next().is_some_and(|c| c.is_alphanumeric() || c == '_') {
            continue;
        }
        let rest = rest.trim_start();
        let ident: String = rest
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if !ident.is_empty() {
            return Some(ident);
        }
    }
    None
}

/// The self type of an `impl` header: the path segment after `for` when
/// present (`impl Debug for Job` → `Job`), else after `impl` and its
/// generics (`impl<'w> GpuSystem<'w>` → `GpuSystem`).
fn parse_impl_type(header: &str) -> Option<String> {
    let at = find_keyword_at(header, "impl")?;
    let mut rest = &header[at + 4..];
    // Skip the generic parameter list, if any.
    let trimmed = rest.trim_start();
    if let Some(stripped) = trimmed.strip_prefix('<') {
        let mut depth = 1usize;
        let mut end = 0;
        for (i, c) in stripped.char_indices() {
            match c {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        end = i + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        rest = &stripped[end..];
    } else {
        rest = trimmed;
    }
    // `Trait for Type` → keep the Type side.
    if let Some(at) = find_keyword_at(rest, "for") {
        rest = &rest[at + 3..];
    }
    // Last `::` segment's leading identifier.
    let head: &str = rest.trim_start();
    let path_end = head
        .find(|c: char| !(c.is_alphanumeric() || c == '_' || c == ':'))
        .unwrap_or(head.len());
    let path = &head[..path_end];
    let seg = path.rsplit("::").next().unwrap_or(path);
    let ident: String = seg.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
    if ident.is_empty() {
        None
    } else {
        Some(ident)
    }
}

fn find_keyword_at(text: &str, word: &str) -> Option<usize> {
    let mut search = 0;
    while let Some(rel) = text[search..].find(word) {
        let at = search + rel;
        search = at + word.len();
        let before_ok = at == 0
            || !text[..at].chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after_ok = !text[at + word.len()..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return Some(at);
        }
    }
    None
}

/// Parses one struct-body field line: `pub name: Type,`.
fn parse_field(code: &str, line: usize) -> Option<FieldItem> {
    let t = code.trim();
    let t = t.strip_prefix("pub(crate) ").or_else(|| t.strip_prefix("pub ")).unwrap_or(t);
    let (name, ty) = t.split_once(':')?;
    let name = name.trim();
    if name.is_empty()
        || !name.chars().all(|c| c.is_alphanumeric() || c == '_')
        || name.chars().next().is_some_and(|c| c.is_ascii_digit())
    {
        return None;
    }
    let ty = ty.trim().trim_end_matches(',').trim();
    if ty.is_empty() {
        return None;
    }
    Some(FieldItem { name: name.to_string(), ty: ty.to_string(), line })
}

/// Appends callee names found in one body line to `calls` (deduplicated
/// against the existing list).
fn collect_calls(code: &str, calls: &mut Vec<String>) {
    let chars: Vec<char> = code.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if chars[i].is_alphabetic() || chars[i] == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            let ident: String = chars[start..i].iter().collect();
            // A call is `ident(`; `ident!(` is a macro, `fn ident(` is a
            // declaration fragment spilled into a body line.
            let next = chars.get(i).copied();
            if next == Some('(')
                && !CALL_KEYWORDS.contains(&ident.as_str())
                && !preceded_by_fn(&chars, start)
                && !calls.iter().any(|c| c == &ident)
            {
                calls.push(ident);
            }
        } else {
            i += 1;
        }
    }
}

/// Whether the identifier starting at `start` is directly preceded by the
/// keyword `fn` (a declaration, not a call).
fn preceded_by_fn(chars: &[char], start: usize) -> bool {
    let mut i = start;
    while i > 0 && chars[i - 1].is_whitespace() {
        i -= 1;
    }
    i >= 2 && chars[i - 2] == 'f' && chars[i - 1] == 'n' && (i == 2 || !chars[i - 3].is_alphanumeric())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index(src: &str) -> ItemIndex {
        ItemIndex::build(&[SourceFile::from_source("crates/dcl1/src/x.rs", src)])
    }

    #[test]
    fn fns_structs_and_impls_are_attributed() {
        let src = "pub struct Pool {\n    pub slots: Vec<Slot>,\n    count: u64,\n}\n\
                   impl Pool {\n    pub fn tick(&mut self) {\n        self.step();\n    }\n}\n\
                   fn free() { helper(); }\n";
        let idx = index(src);
        assert_eq!(idx.structs.len(), 1);
        let s = &idx.structs[0];
        assert_eq!(s.name, "Pool");
        assert_eq!(s.krate, "dcl1");
        let fields: Vec<&str> = s.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(fields, ["slots", "count"]);
        assert_eq!(s.fields[0].ty, "Vec<Slot>");

        assert_eq!(idx.fns.len(), 2);
        let tick = &idx.fns[0];
        assert_eq!(tick.name, "tick");
        assert_eq!(tick.impl_type.as_deref(), Some("Pool"));
        assert_eq!(tick.calls, ["step"]);
        let free = &idx.fns[1];
        assert_eq!(free.impl_type, None);
        assert_eq!(free.calls, ["helper"]);
    }

    #[test]
    fn impl_type_resolution() {
        assert_eq!(parse_impl_type("impl Pool ").as_deref(), Some("Pool"));
        assert_eq!(parse_impl_type("impl<'w> GpuSystem<'w> ").as_deref(), Some("GpuSystem"));
        assert_eq!(parse_impl_type("impl std::fmt::Debug for Job ").as_deref(), Some("Job"));
        assert_eq!(parse_impl_type("impl<T: Copy> Crossbar<T> ").as_deref(), Some("Crossbar"));
        assert_eq!(parse_impl_type("impl Drop for ShardPool ").as_deref(), Some("ShardPool"));
    }

    #[test]
    fn call_edges_skip_macros_keywords_and_declarations() {
        let src = "fn f() {\n    if ready(x) { go(); }\n    panic!(\"no\");\n    let v = y.map(g);\n    h(1)(2);\n}\n";
        let idx = index(src);
        assert_eq!(idx.fns[0].calls, ["ready", "go", "map", "h"]);
    }

    #[test]
    fn fn_body_spans_and_nested_scopes() {
        let src = "impl A {\n    fn outer(&self) {\n        let c = Cfg { x: 1 };\n        inner();\n    }\n}\n\
                   struct B {\n    field: u8,\n}\n";
        let idx = index(src);
        let outer = &idx.fns[0];
        assert_eq!(outer.start_line, 2);
        assert_eq!(outer.end_line, 5);
        assert_eq!(outer.calls, ["inner"]);
        // The struct literal's `x: 1` must not leak into struct B's fields.
        assert_eq!(idx.structs[0].name, "B");
        let fields: Vec<&str> = idx.structs[0].fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(fields, ["field"]);
    }

    #[test]
    fn test_gated_items_are_marked() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() { helper(); }\n}\n";
        let idx = index(src);
        assert!(!idx.fns[0].in_test);
        assert!(idx.fns[1].in_test, "{:?}", idx.fns[1]);
    }

    #[test]
    fn cross_file_lookup_by_name() {
        let a = SourceFile::from_source("crates/gpu/src/a.rs", "pub fn tick() { helper(); }\n");
        let b = SourceFile::from_source("crates/mem/src/b.rs", "pub fn tick() {}\npub fn only() {}\n");
        let idx = ItemIndex::build(&[a, b]);
        assert_eq!(idx.fns_named("tick").len(), 2);
        assert_eq!(idx.fns_named("only").len(), 1);
        assert_eq!(idx.fns_named("absent").len(), 0);
    }

    #[test]
    fn crate_labels() {
        assert_eq!(crate_of(std::path::Path::new("crates/noc/src/epoch.rs")), "noc");
        assert_eq!(crate_of(std::path::Path::new("src/lib.rs")), "root");
    }
}
