//! `simcheck` — the workspace's static determinism/integrity linter.
//!
//! The simulator memoizes results on disk and the paper's figures are
//! regenerated from those bytes, so a whole class of ordinarily-benign
//! Rust (`HashMap` iteration, wall-clock reads, silent `as` truncation,
//! float accumulation order) is a correctness bug here. `simcheck lint`
//! enforces, lexically and dependency-free:
//!
//! * [`rules`] — the per-line rules: `hash_order`, `wall_clock`,
//!   `truncating_cast`, `float_accum`, `bare_catch_unwind`,
//!   `metric_names` (registry metric names must be unique snake_case
//!   `subsystem.name`), plus `allow_hygiene` for malformed annotations;
//! * [`index`] + [`crossfile`] — the two-pass cross-file rules guarding
//!   the epoch-barrier sharded machine: `shard_shared_state`,
//!   `merge_commutative`, `epoch_order`, `unsorted_iteration`,
//!   `rng_source`;
//! * [`schema`] — `stats_schema`: `RunStats` fields, the runner's
//!   `CACHE_SCHEMA_VERSION`, the deserializer's field-count guard, and
//!   the enabled-rule census must move together, pinned by the committed
//!   `simcheck.lock`.
//!
//! Every rule is suppressible per line with
//! `// simcheck: allow(rule): reason`. The runtime half of the
//! correctness tooling — the `--check` conservation harness and the
//! 1-vs-N-shard byte-identity tests — lives in the simulator itself
//! (`dcl1::check`, `dcl1::shard`); this crate only checks source text.

#![warn(missing_docs)]

pub mod crossfile;
pub mod index;
pub mod rules;
pub mod sarif;
pub mod schema;
pub mod source;
pub mod workspace;

use rules::Finding;
use std::path::Path;

/// Aggregate result of a full lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Findings across all files, the cross-file pass, and the schema rule.
    pub findings: Vec<Finding>,
    /// Findings suppressed by well-formed annotations.
    pub suppressed: usize,
    /// Files scanned.
    pub files: usize,
    /// Rules enabled (the census size).
    pub rules: usize,
}

/// Lints the whole workspace under `root`: per-file rules, the two-pass
/// cross-file analysis, and the schema/census lock check.
///
/// # Errors
///
/// Returns a message when a source file cannot be read or the schema
/// inputs cannot be resolved.
pub fn run_lint(root: &Path) -> Result<LintReport, String> {
    let mut report = LintReport { rules: rules::RULES.len(), ..LintReport::default() };
    let mut files = Vec::new();
    for path in workspace::source_files(root) {
        let file = source::SourceFile::load(&path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        files.push(rel_label(root, &file));
    }
    let mut metric_sites = Vec::new();
    for file in &files {
        let mut r = rules::lint_file(file);
        report.findings.append(&mut r.findings);
        report.suppressed += r.suppressed;
        report.files += 1;
        metric_sites.extend(rules::metric_sites(file));
    }
    report.findings.extend(rules::check_metric_duplicates(&metric_sites));

    let item_index = index::ItemIndex::build(&files);
    let mut cross = crossfile::lint_crossfile(&files, &item_index);
    report.findings.append(&mut cross.findings);
    report.suppressed += cross.suppressed;

    let state = schema::read_state(root)?;
    let lock_text = std::fs::read_to_string(root.join(schema::LOCK_PATH)).ok();
    let lock = lock_text.as_deref().and_then(schema::parse_lock);
    report.findings.extend(schema::check_schema(&state, lock.as_ref()));
    report.findings.extend(schema::check_rule_census(lock_text.as_deref()));
    Ok(report)
}

/// Re-labels a scanned file with its root-relative path so findings (and
/// the crate-scoping logic in [`rules`]) are machine-independent.
fn rel_label(root: &Path, file: &source::SourceFile) -> source::SourceFile {
    let rel = file.path.strip_prefix(root).unwrap_or(&file.path).to_path_buf();
    source::SourceFile { path: rel, lines: file.lines.clone() }
}
