//! `simcheck` — the workspace's static determinism/integrity linter.
//!
//! The simulator memoizes results on disk and the paper's figures are
//! regenerated from those bytes, so a whole class of ordinarily-benign
//! Rust (`HashMap` iteration, wall-clock reads, silent `as` truncation,
//! float accumulation order) is a correctness bug here. `simcheck lint`
//! enforces, lexically and dependency-free:
//!
//! * [`rules`] — `hash_order`, `wall_clock`, `truncating_cast`,
//!   `float_accum`, `bare_catch_unwind`, `metric_names` (registry metric
//!   names must be unique snake_case `subsystem.name`), each suppressible
//!   per line with `// simcheck: allow(rule): reason`;
//! * [`schema`] — `stats_schema`: `RunStats` fields, the runner's
//!   `CACHE_SCHEMA_VERSION`, and the deserializer's field-count guard
//!   must move together, pinned by the committed `simcheck.lock`.
//!
//! The runtime half of the correctness tooling — the `--check`
//! conservation harness — lives in the simulator itself
//! (`dcl1::check`); this crate only checks source text.

#![warn(missing_docs)]

pub mod rules;
pub mod schema;
pub mod source;
pub mod workspace;

use rules::Finding;
use std::path::Path;

/// Aggregate result of a full lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Findings across all files and the schema rule.
    pub findings: Vec<Finding>,
    /// Findings suppressed by well-formed annotations.
    pub suppressed: usize,
    /// Files scanned.
    pub files: usize,
}

/// Lints the whole workspace under `root`.
///
/// # Errors
///
/// Returns a message when a source file cannot be read or the schema
/// inputs cannot be resolved.
pub fn run_lint(root: &Path) -> Result<LintReport, String> {
    let mut report = LintReport::default();
    let mut metric_sites = Vec::new();
    for path in workspace::source_files(root) {
        let file = source::SourceFile::load(&path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        let rel = rel_label(root, &file);
        let mut r = rules::lint_file(&rel);
        report.findings.append(&mut r.findings);
        report.suppressed += r.suppressed;
        report.files += 1;
        metric_sites.extend(rules::metric_sites(&rel));
    }
    report.findings.extend(rules::check_metric_duplicates(&metric_sites));
    let state = schema::read_state(root)?;
    let lock = std::fs::read_to_string(root.join(schema::LOCK_PATH))
        .ok()
        .as_deref()
        .and_then(schema::parse_lock);
    report.findings.extend(schema::check_schema(&state, lock.as_ref()));
    Ok(report)
}

/// Re-labels a scanned file with its root-relative path so findings (and
/// the crate-scoping logic in [`rules`]) are machine-independent.
fn rel_label(root: &Path, file: &source::SourceFile) -> source::SourceFile {
    let rel = file.path.strip_prefix(root).unwrap_or(&file.path).to_path_buf();
    source::SourceFile { path: rel, lines: file.lines.clone() }
}
