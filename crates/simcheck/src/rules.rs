//! The lint rules: lexical determinism/integrity checks over scanned
//! sources (see `ROADMAP.md`'s reproducibility goal — simulation results
//! are memoized on disk, so anything order- or environment-dependent in
//! sim state silently poisons every figure).
//!
//! Findings are suppressed by a `// simcheck: allow(rule): reason`
//! annotation on the same or the preceding line; an annotation without a
//! reason is itself reported. Test code (`tests/`, `benches/`,
//! `#[cfg(test)]` blocks) is not scanned.

use crate::source::{Allow, SourceFile};
use std::path::PathBuf;

/// Every rule name, as used in annotations, reports, and the lock file's
/// rule census. The first seven are per-line lexical rules; the last five
/// are the cross-file shard-safety rules (see [`crate::crossfile`]).
pub const RULES: [&str; 12] = [
    "hash_order",
    "wall_clock",
    "truncating_cast",
    "float_accum",
    "stats_schema",
    "bare_catch_unwind",
    "metric_names",
    "shard_shared_state",
    "merge_commutative",
    "epoch_order",
    "unsorted_iteration",
    "rng_source",
];

/// The meta-rule for malformed/unknown `simcheck: allow(...)` annotations.
/// Not part of [`RULES`] (there is nothing to allow-list it *against* in
/// the census), but a first-class name in reports and annotations.
pub const ALLOW_HYGIENE: &str = "allow_hygiene";

/// Crates whose hot paths must stay free of wall-clock/environment reads.
/// `dcl1d` is on the list deliberately: the daemon hosts simulation
/// workers, and connection/queue timing is diagnostic-only — it must
/// never leak into simulated state.
const HOT_CRATES: [&str; 6] = ["gpu", "dcl1", "noc", "mem", "cache", "dcl1d"];

/// Identifier parts naming the counters the truncating-cast rule guards.
const COUNTER_WORDS: [&str; 16] = [
    "cycle", "cycles", "now", "flit", "flits", "byte", "bytes", "tick", "ticks", "instr",
    "instrs", "instructions", "stall", "stalls", "epoch", "epochs",
];

/// Cast targets that can drop bits from a 64-bit counter.
const NARROW_TARGETS: [&str; 8] = ["u8", "u16", "u32", "i8", "i16", "i32", "usize", "isize"];

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The rule that fired.
    pub rule: &'static str,
    /// File the finding is in.
    pub path: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// What is wrong and what to do about it.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path.display(), self.line, self.rule, self.message)
    }
}

/// Result of linting one file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Findings that survived annotation filtering (including
    /// annotation-hygiene findings).
    pub findings: Vec<Finding>,
    /// Findings suppressed by a well-formed annotation.
    pub suppressed: usize,
}

/// Runs every per-file rule over `file` and applies annotations.
pub fn lint_file(file: &SourceFile) -> FileReport {
    let mut raw = Vec::new();
    hash_order(file, &mut raw);
    if in_hot_crate(file) {
        wall_clock(file, &mut raw);
    }
    truncating_cast(file, &mut raw);
    float_accum(file, &mut raw);
    bare_catch_unwind(file, &mut raw);
    metric_names(file, &mut raw);

    annotation_hygiene(file, &mut raw);

    let mut report = FileReport::default();
    for f in raw {
        match allow_for(file, f.line, f.rule) {
            Some(a) if a.has_reason => report.suppressed += 1,
            Some(_) => report.findings.push(Finding {
                rule: f.rule,
                path: f.path.clone(),
                line: f.line,
                message: format!(
                    "annotation `simcheck: allow({})` needs a `: reason` explaining why the \
                     finding is safe",
                    f.rule
                ),
            }),
            None => report.findings.push(f),
        }
    }
    report
}

/// The annotation covering (`line`, `rule`), if any: same line or the
/// line directly above.
pub(crate) fn allow_for(file: &SourceFile, line: usize, rule: &str) -> Option<Allow> {
    for probe in [line, line.saturating_sub(1)] {
        if probe == 0 {
            continue;
        }
        if let Some(a) = file.allows_on(probe).into_iter().find(|a| a.rule == rule) {
            return Some(a);
        }
    }
    None
}

/// `allow_hygiene`: annotations naming rules that do not exist (typos
/// silently suppress nothing — surface them). Runs before annotation
/// filtering, so a deliberate forward-reference can itself carry a
/// reasoned `allow(allow_hygiene)`.
fn annotation_hygiene(file: &SourceFile, out: &mut Vec<Finding>) {
    for line in &file.lines {
        for a in crate::source::parse_allows(&line.comment) {
            if !RULES.contains(&a.rule.as_str()) && a.rule != ALLOW_HYGIENE {
                out.push(Finding {
                    rule: ALLOW_HYGIENE,
                    path: file.path.clone(),
                    line: line.number,
                    message: format!("annotation names unknown rule `{}`", a.rule),
                });
            }
        }
    }
}

fn in_hot_crate(file: &SourceFile) -> bool {
    let p = file.path.to_string_lossy().replace('\\', "/");
    HOT_CRATES.iter().any(|c| p.contains(&format!("crates/{c}/")))
}

/// `hash_order`: no `HashMap`/`HashSet` with the default `RandomState`
/// reachable from sim state — iteration order varies per process, so any
/// path from one to stats or event order breaks run-to-run determinism
/// and the on-disk memo.
fn hash_order(file: &SourceFile, out: &mut Vec<Finding>) {
    for line in file.lines.iter().filter(|l| !l.in_test) {
        if line.code.contains("with_hasher") || line.code.contains("BuildHasher") {
            continue; // an explicit deterministic hasher is the sanctioned escape
        }
        for token in ["HashMap", "HashSet"] {
            if find_word(&line.code, token).is_some() {
                out.push(Finding {
                    rule: "hash_order",
                    path: file.path.clone(),
                    line: line.number,
                    message: format!(
                        "{token} iterates in RandomState order; use BTreeMap/BTreeSet (or a \
                         deterministic with_hasher) so sim state stays byte-reproducible"
                    ),
                });
            }
        }
    }
}

/// `wall_clock`: no wall-clock, environment, or thread-identity reads in
/// the hot paths of the sim crates — they make behavior host-dependent.
fn wall_clock(file: &SourceFile, out: &mut Vec<Finding>) {
    const PATTERNS: [&str; 6] =
        ["Instant", "SystemTime", "std::env", "env::var", "thread::current", "ThreadId"];
    for line in file.lines.iter().filter(|l| !l.in_test) {
        for pat in PATTERNS {
            if find_word(&line.code, pat).is_some() {
                out.push(Finding {
                    rule: "wall_clock",
                    path: file.path.clone(),
                    line: line.number,
                    message: format!(
                        "`{pat}` in a sim hot path makes results host/time-dependent; model time \
                         must come from the simulated clock"
                    ),
                });
                break; // one finding per line is enough
            }
        }
    }
}

/// `truncating_cast`: no narrowing `as` cast applied to a cycle/flit/byte
/// counter — long runs overflow 32 bits ( >4e9 cycles is routine at full
/// scale) and `as` wraps silently. Honors
/// `#[expect(clippy::cast_possible_truncation)]` within three lines above.
fn truncating_cast(file: &SourceFile, out: &mut Vec<Finding>) {
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let mut clippy_waived = false;
        for back in 0..=3usize {
            if let Some(prev) = idx.checked_sub(back).and_then(|i| file.lines.get(i)) {
                if prev.code.contains("cast_possible_truncation") {
                    clippy_waived = true;
                    break;
                }
            }
        }
        if clippy_waived {
            continue;
        }
        let code = &line.code;
        let mut search = 0;
        while let Some(rel) = code[search..].find(" as ") {
            let at = search + rel;
            search = at + 4;
            let target: String = code[at + 4..]
                .trim_start()
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if !NARROW_TARGETS.contains(&target.as_str()) {
                continue;
            }
            if let Some(ident) = cast_operand_ident(code, at) {
                if ident.split('_').any(|part| COUNTER_WORDS.contains(&part)) {
                    out.push(Finding {
                        rule: "truncating_cast",
                        path: file.path.clone(),
                        line: line.number,
                        message: format!(
                            "`{ident} as {target}` can silently truncate a counter; use \
                             `{target}::try_from(..)` or widen the target"
                        ),
                    });
                }
            }
        }
    }
}

/// The decisive identifier of the operand directly left of a cast at byte
/// `at` (the position of `" as "`): for `self.cfg.line_bytes as u32` that
/// is `line_bytes`; for `x.len() as u32` it is `len`. Balanced `(..)` /
/// `[..]` groups are skipped, so `f(a, b) as u32` resolves to `f`.
fn cast_operand_ident(code: &str, at: usize) -> Option<String> {
    let chars: Vec<char> = code[..at].chars().collect();
    let mut i = chars.len();
    // Skip trailing whitespace and balanced groups.
    loop {
        while i > 0 && chars[i - 1].is_whitespace() {
            i -= 1;
        }
        if i == 0 {
            return None;
        }
        match chars[i - 1] {
            ')' | ']' => {
                let open = if chars[i - 1] == ')' { '(' } else { '[' };
                let close = chars[i - 1];
                let mut depth = 0i32;
                while i > 0 {
                    i -= 1;
                    if chars[i] == close {
                        depth += 1;
                    } else if chars[i] == open {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                }
            }
            c if c.is_alphanumeric() || c == '_' => {
                let end = i;
                while i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_') {
                    i -= 1;
                }
                return Some(chars[i..end].iter().collect());
            }
            _ => return None,
        }
    }
}

/// `float_accum`: no `f32`/`f64` running accumulation in code that feeds
/// the on-disk stats cache — float addition is non-associative, so any
/// reordering (or a future parallel reduction) changes cached bytes. Use
/// `dcl1_common::stats::RunningMean` (Welford) or integer sums instead.
/// `crates/common/src/stats.rs` — the home of those types — is exempt.
fn float_accum(file: &SourceFile, out: &mut Vec<Finding>) {
    let p = file.path.to_string_lossy().replace('\\', "/");
    if p.ends_with("common/src/stats.rs") {
        return;
    }
    let floats = declared_floats(file);
    if floats.is_empty() {
        return;
    }
    for line in file.lines.iter().filter(|l| !l.in_test) {
        for op in ["+=", "-="] {
            let Some(pos) = line.code.find(op) else { continue };
            let lhs: String = line.code[..pos]
                .chars()
                .rev()
                .skip_while(|c| c.is_whitespace())
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect::<String>()
                .chars()
                .rev()
                .collect();
            if !lhs.is_empty() && floats.contains(&lhs) {
                out.push(Finding {
                    rule: "float_accum",
                    path: file.path.clone(),
                    line: line.number,
                    message: format!(
                        "float accumulation into `{lhs}` is order-sensitive and feeds cached \
                         stats; use RunningMean (Welford) or an integer sum"
                    ),
                });
            }
        }
    }
}

/// Names declared with a float type or initialized from a float literal
/// anywhere in the file (fields, lets, params — scope-insensitive on
/// purpose: a false candidate only matters if it is also accumulated
/// into, which is exactly what the rule questions).
pub(crate) fn declared_floats(file: &SourceFile) -> Vec<String> {
    let mut names = Vec::new();
    for line in file.lines.iter().filter(|l| !l.in_test) {
        let code = &line.code;
        for ty in [": f32", ": f64"] {
            let mut search = 0;
            while let Some(rel) = code[search..].find(ty) {
                let at = search + rel;
                search = at + ty.len();
                if let Some(name) = ident_before(code, at) {
                    names.push(name);
                }
            }
        }
        // `let mut x = 0.0;` style.
        if let Some(pos) = code.find("= 0.0") {
            if let Some(name) = ident_before(code, pos) {
                names.push(name);
            }
        }
    }
    names
}

fn ident_before(code: &str, at: usize) -> Option<String> {
    let chars: Vec<char> = code[..at].chars().collect();
    let mut i = chars.len();
    while i > 0 && chars[i - 1].is_whitespace() {
        i -= 1;
    }
    let end = i;
    while i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_') {
        i -= 1;
    }
    if i == end {
        None
    } else {
        Some(chars[i..end].iter().collect())
    }
}

/// `bare_catch_unwind`: panic recovery is a supervision decision, and its
/// single sanctioned home is `crates/resilience` (the `supervise` retry
/// loop). A `catch_unwind` anywhere else can silently swallow a modeling
/// bug — the panic that would have named the broken invariant becomes a
/// skipped point nobody investigates. Code with a genuine need (e.g. a
/// test harness asserting on panics outside `#[cfg(test)]`) must carry a
/// `// simcheck: allow(bare_catch_unwind): reason` annotation.
fn bare_catch_unwind(file: &SourceFile, out: &mut Vec<Finding>) {
    let p = file.path.to_string_lossy().replace('\\', "/");
    if p.contains("crates/resilience/") {
        return;
    }
    for line in file.lines.iter().filter(|l| !l.in_test) {
        if find_word(&line.code, "catch_unwind").is_some() {
            out.push(Finding {
                rule: "bare_catch_unwind",
                path: file.path.clone(),
                line: line.number,
                message: "`catch_unwind` outside crates/resilience can swallow a modeling bug; \
                          route recovery through `dcl1_resilience::supervise` (or annotate why \
                          containment is safe here)"
                    .to_string(),
            });
        }
    }
}

/// The registration methods whose string-literal argument is a metric
/// name: `reg.counter("…")`, `reg.gauge("…")`, `reg.histogram("…")`.
const METRIC_METHODS: [&str; 3] = [".counter(\"", ".gauge(\"", ".histogram(\""];

/// One metric-name registration site found in production code.
#[derive(Debug, Clone)]
pub struct MetricSite {
    /// The literal metric name as registered.
    pub name: String,
    /// File the registration is in.
    pub path: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Whether the site carries a reasoned `allow(metric_names)`
    /// annotation (such sites are exempt from the uniqueness check).
    pub allowed: bool,
}

/// Every metric name registered with a string literal in this file's
/// production code. The scanner blanks literal contents in `Line::code`,
/// so the call shape is confirmed there (comments are stripped from it)
/// and the name itself is read back out of `Line::raw`.
pub fn metric_sites(file: &SourceFile) -> Vec<MetricSite> {
    let mut out = Vec::new();
    for line in file.lines.iter().filter(|l| !l.in_test) {
        for method in METRIC_METHODS {
            if !line.code.contains(method) {
                continue; // only a comment (or nothing) mentions it
            }
            let mut search = 0;
            while let Some(rel) = line.raw[search..].find(method) {
                let at = search + rel + method.len();
                search = at;
                let Some(end) = line.raw[at..].find('"') else { break };
                let name = &line.raw[at..at + end];
                if name.contains('\\') {
                    continue; // escapes — not a plain metric-name literal
                }
                out.push(MetricSite {
                    name: name.to_string(),
                    path: file.path.clone(),
                    line: line.number,
                    allowed: allow_for(file, line.number, "metric_names")
                        .is_some_and(|a| a.has_reason),
                });
            }
        }
    }
    out
}

/// True for the enforced metric-name shape: `subsystem.name`, both
/// segments snake_case (lowercase letter first, then `[a-z0-9_]`).
fn valid_metric_name(name: &str) -> bool {
    let mut parts = name.split('.');
    let (Some(a), Some(b), None) = (parts.next(), parts.next(), parts.next()) else {
        return false;
    };
    [a, b].iter().all(|seg| {
        seg.chars().next().is_some_and(|c| c.is_ascii_lowercase())
            && seg.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
    })
}

/// `metric_names` (per-file half): every registry metric registered from
/// production code must be named `subsystem.name` in snake_case —
/// rendered snapshots are sorted byte-comparable artifacts, and the
/// `perf_sweep --compare` gate diffs them across commits, so ad-hoc
/// names fragment the namespace the baseline pins. The workspace-wide
/// uniqueness half lives in [`check_metric_duplicates`].
fn metric_names(file: &SourceFile, out: &mut Vec<Finding>) {
    for site in metric_sites(file) {
        if !valid_metric_name(&site.name) {
            out.push(Finding {
                rule: "metric_names",
                path: site.path,
                line: site.line,
                message: format!(
                    "metric name `{}` must be snake_case `subsystem.name` (exactly one dot, \
                     lowercase-letter-led segments) so registry snapshots stay a stable, \
                     mergeable namespace",
                    site.name
                ),
            });
        }
    }
}

/// `metric_names` (workspace half): a metric name registered at two or
/// more production sites is two subsystems fighting over one counter —
/// the registry would silently hand both the same slot and the merged
/// snapshot could not be attributed. Reasoned
/// `allow(metric_names)`-annotated sites are exempt.
pub fn check_metric_duplicates(sites: &[MetricSite]) -> Vec<Finding> {
    let mut by_name: std::collections::BTreeMap<&str, Vec<&MetricSite>> =
        std::collections::BTreeMap::new();
    for site in sites.iter().filter(|s| !s.allowed) {
        by_name.entry(&site.name).or_default().push(site);
    }
    let mut out = Vec::new();
    for (name, sites) in by_name {
        let [first, rest @ ..] = sites.as_slice() else { continue };
        for dup in rest {
            out.push(Finding {
                rule: "metric_names",
                path: dup.path.clone(),
                line: dup.line,
                message: format!(
                    "metric `{name}` is already registered at {}:{} — every metric name must \
                     be registered exactly once workspace-wide (or carry a reasoned \
                     `allow(metric_names)` annotation)",
                    first.path.display(),
                    first.line
                ),
            });
        }
    }
    out
}

/// Position of `word` in `code` with identifier boundaries on both sides.
/// `::`-qualified patterns (e.g. `std::env`) match on substring with a
/// boundary check only at the ends.
pub(crate) fn find_word(code: &str, word: &str) -> Option<usize> {
    let mut search = 0;
    while let Some(rel) = code[search..].find(word) {
        let at = search + rel;
        search = at + word.len();
        let before_ok = at == 0
            || !code[..at].chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = code[at + word.len()..].chars().next();
        let after_ok = !after.is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return Some(at);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(path: &str, src: &str) -> FileReport {
        lint_file(&SourceFile::from_source(path, src))
    }

    #[test]
    fn cast_operand_resolution() {
        let c = "let x = self.cfg.line_bytes as u32;";
        let at = c.find(" as ").unwrap();
        assert_eq!(cast_operand_ident(c, at).as_deref(), Some("line_bytes"));
        let c2 = "let x = instr.accesses.len() as u32;";
        let at2 = c2.find(" as ").unwrap();
        assert_eq!(cast_operand_ident(c2, at2).as_deref(), Some("len"));
    }

    #[test]
    fn find_word_respects_boundaries() {
        assert!(find_word("let m: HashMap<u32, u32>;", "HashMap").is_some());
        assert!(find_word("let m = MyHashMapLike::new();", "HashMap").is_none());
        assert!(find_word("std::env::var(\"X\")", "std::env").is_some());
    }

    #[test]
    fn annotations_with_reason_suppress() {
        let src = "// simcheck: allow(hash_order): fixture only\nlet m: HashMap<u8, u8> = x;\n";
        let r = lint("crates/dcl1/src/x.rs", src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert_eq!(r.suppressed, 1);
    }

    #[test]
    fn annotation_without_reason_is_reported() {
        let src = "let m: HashMap<u8, u8> = x; // simcheck: allow(hash_order)\n";
        let r = lint("crates/dcl1/src/x.rs", src);
        assert_eq!(r.findings.len(), 1);
        assert!(r.findings[0].message.contains("reason"));
    }

    #[test]
    fn bare_catch_unwind_fires_outside_resilience() {
        let src = "let r = std::panic::catch_unwind(|| run());\n";
        let r = lint("crates/bench/src/runner.rs", src);
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].rule, "bare_catch_unwind");
        assert!(r.findings[0].message.contains("resilience"));
    }

    #[test]
    fn bare_catch_unwind_exempts_the_resilience_crate() {
        let src = "let r = catch_unwind(AssertUnwindSafe(|| attempt()));\n";
        let r = lint("crates/resilience/src/supervisor.rs", src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn bare_catch_unwind_honors_annotations_and_word_boundaries() {
        let allowed = "// simcheck: allow(bare_catch_unwind): harness must assert on panics\n\
                       let r = catch_unwind(|| go());\n";
        let r = lint("crates/bench/src/x.rs", allowed);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert_eq!(r.suppressed, 1);

        // An identifier merely containing the name is not a hit.
        let similar = "fn my_catch_unwinder() {}\n";
        let r = lint("crates/bench/src/x.rs", similar);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn metric_names_fires_on_malformed_names() {
        for bad in ["NotSnake", "gpu", "gpu.Instr", "gpu.a.b", "gpu.", "1gpu.x", "gpu.foo-bar"] {
            let src = format!("let c = reg.counter(\"{bad}\");\n");
            let r = lint("crates/gpu/src/metrics.rs", &src);
            assert_eq!(r.findings.len(), 1, "`{bad}`: {:?}", r.findings);
            assert_eq!(r.findings[0].rule, "metric_names");
        }
        for ok in ["gpu.instructions", "dcl1.l1_q3_stall_cycles", "memo.disk_hits"] {
            let src = format!("let c = reg.counter(\"{ok}\");\n");
            let r = lint("crates/gpu/src/metrics.rs", &src);
            assert!(r.findings.is_empty(), "`{ok}`: {:?}", r.findings);
        }
    }

    #[test]
    fn metric_names_skips_tests_comments_and_non_literals() {
        let in_test = "#[cfg(test)]\nmod tests {\n    fn t() { r.counter(\"BadName\"); }\n}\n";
        assert!(lint("crates/obs/src/registry.rs", in_test).findings.is_empty());

        let comment_only = "// e.g. reg.counter(\"BadName\") would be wrong\nfn f() {}\n";
        assert!(lint("crates/gpu/src/x.rs", comment_only).findings.is_empty());

        let non_literal = "let c = reg.counter(name);\n";
        assert!(lint("crates/gpu/src/x.rs", non_literal).findings.is_empty());
    }

    #[test]
    fn metric_sites_collects_all_three_kinds() {
        let src = "let c = reg.counter(\"a.c\");\n\
                   let g = reg.gauge(\"a.g\");\n\
                   let h = reg.histogram(\"a.h\");\n";
        let file = SourceFile::from_source("crates/gpu/src/m.rs", src);
        let names: Vec<String> = metric_sites(&file).into_iter().map(|s| s.name).collect();
        assert_eq!(names, ["a.c", "a.g", "a.h"]);
    }

    #[test]
    fn duplicate_registration_across_files_is_reported_once_per_extra_site() {
        let a = SourceFile::from_source(
            "crates/gpu/src/metrics.rs",
            "let c = reg.counter(\"gpu.cycles\");\n",
        );
        let b = SourceFile::from_source(
            "crates/noc/src/metrics.rs",
            "let c = reg.counter(\"gpu.cycles\");\nlet d = reg.counter(\"noc.flits\");\n",
        );
        let mut sites = metric_sites(&a);
        sites.extend(metric_sites(&b));
        let findings = check_metric_duplicates(&sites);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "metric_names");
        assert!(findings[0].message.contains("gpu/src/metrics.rs:1"), "{}", findings[0].message);

        // A reasoned annotation on the second site exempts it.
        let annotated = SourceFile::from_source(
            "crates/noc/src/metrics.rs",
            "// simcheck: allow(metric_names): intentional alias during migration\n\
             let c = reg.counter(\"gpu.cycles\");\n",
        );
        let mut sites = metric_sites(&a);
        sites.extend(metric_sites(&annotated));
        assert!(check_metric_duplicates(&sites).is_empty());
    }

    #[test]
    fn seeded_fixture_catches_planted_catch_unwind() {
        // A seeded fixture: deterministically generate a plausible source
        // file, plant one bare `catch_unwind` at a derived line, and check
        // the rule finds exactly that line.
        let mut rng = dcl1_common::SplitMix64::new(0xBADC_0DE5);
        for _ in 0..8 {
            let lines = 5 + usize::try_from(rng.next_below(40)).expect("small");
            let plant = usize::try_from(rng.next_below(lines as u64)).expect("small");
            let mut src = String::new();
            for i in 0..lines {
                if i == plant {
                    src.push_str("    let out = std::panic::catch_unwind(|| work());\n");
                } else {
                    src.push_str(&format!("    let v{i} = compute_{i}(input);\n"));
                }
            }
            let r = lint("crates/mem/src/planted.rs", &src);
            let hits: Vec<_> =
                r.findings.iter().filter(|f| f.rule == "bare_catch_unwind").collect();
            assert_eq!(hits.len(), 1, "plant at {plant}: {:?}", r.findings);
            assert_eq!(hits[0].line, plant + 1);
        }
    }
}
