//! Record a workload's instruction trace to disk, replay it through the
//! simulator, and verify the replay is bit-identical to the generator —
//! the path by which real GPU traces (GPGPU-Sim / NVBit conversions) can
//! drive this reproduction.
//!
//! Run with: `cargo run --release --example trace_replay`

use dcl1_repro::dcl1::{Design, GpuConfig, GpuSystem, SimOptions};
use dcl1_repro::workloads::{by_name, record_trace, FileTraceFactory};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut app = by_name("R-KMN").ok_or("unknown app")?.scaled(1, 8);
    app.ctas = 64; // keep the trace file small for the demo

    let path = std::env::temp_dir().join("dcl1_demo_rkmn.dcl1trc");
    record_trace(&app, &path)?;
    let size = std::fs::metadata(&path)?.len();
    println!("recorded {} CTAs x {} wavefronts to {} ({size} bytes)",
        app.ctas, app.wavefronts_per_cta, path.display());

    let replay = FileTraceFactory::load(&path)?;
    println!("replay holds {} instructions", replay.total_instructions());

    // Run the generator and the replay through identical machines: the
    // simulator is deterministic, so every statistic must match exactly.
    let cfg = GpuConfig::default();
    let design = Design::flagship(&cfg);
    let opts = SimOptions::default();

    let gen_stats = GpuSystem::build(&cfg, &design, &app, opts)?.run();
    let rep_stats = GpuSystem::build(&cfg, &design, &replay, opts)?.run();

    println!("generator: {} cycles, IPC {:.3}, miss {:.3}",
        gen_stats.cycles, gen_stats.ipc(), gen_stats.l1_miss_rate());
    println!("replay   : {} cycles, IPC {:.3}, miss {:.3}",
        rep_stats.cycles, rep_stats.ipc(), rep_stats.l1_miss_rate());
    assert_eq!(gen_stats.cycles, rep_stats.cycles, "replay must be bit-identical");
    assert_eq!(gen_stats.l1_misses, rep_stats.l1_misses);
    println!("replay is bit-identical to the generator.");

    std::fs::remove_file(&path).ok();
    Ok(())
}
