//! Domain scenario: DNN inference (the Tango suite).
//!
//! CNN layers re-read their weights from every core, so private L1s fill
//! up with identical copies — the paper's most extreme replication cases.
//! This example sweeps all three Tango networks across the paper's
//! designs and shows where the cache capacity actually goes.
//!
//! Run with: `cargo run --release --example deep_learning`

use dcl1_repro::bench::Table;
use dcl1_repro::dcl1::{Design, GpuConfig, GpuSystem, SimOptions};
use dcl1_repro::workloads::all_apps;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = GpuConfig::default();
    let designs = [
        Design::Baseline,
        Design::Private { nodes: 40 },
        Design::Shared { nodes: 40 },
        Design::flagship(&cfg), // Sh40+C10+Boost
    ];

    let mut speed = Table::new(
        "Tango DNN inference: IPC normalized to the private-L1 baseline",
        &["network", "Pr40", "Sh40", "Sh40+C10+Boost", "replicas(base)", "replicas(best)"],
    );

    for app in all_apps().into_iter().filter(|a| a.name.starts_with("T-")) {
        let app = app.scaled(1, 4);
        let mut results = Vec::new();
        for d in &designs {
            let mut sys = GpuSystem::build(&cfg, d, &app, SimOptions::default())?;
            results.push(sys.run());
        }
        let base = &results[0];
        speed.row(
            app.name,
            vec![
                format!("{:.2}x", results[1].ipc() / base.ipc()),
                format!("{:.2}x", results[2].ipc() / base.ipc()),
                format!("{:.2}x", results[3].ipc() / base.ipc()),
                format!("{:.1}", base.mean_replicas),
                format!("{:.1}", results[3].mean_replicas),
            ],
        );
    }
    println!("{speed}");
    println!("Each weight line exists ~replicas(base) times across the 80 private L1s;");
    println!("the clustered shared DC-L1 caps that at 10 copies and converts the");
    println!("recovered capacity into on-chip bandwidth.");
    Ok(())
}
