//! Quickstart: simulate one GPGPU application on the conventional
//! private-L1 GPU and on the paper's flagship `Sh40+C10+Boost` design,
//! and compare.
//!
//! Run with: `cargo run --release --example quickstart`

use dcl1_repro::bench::Table;
use dcl1_repro::dcl1::{Design, GpuConfig, GpuSystem, SimOptions};
use dcl1_repro::workloads::by_name;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The simulated machine: paper Table II defaults (80 cores @1400 MHz,
    // 16 KB write-evict L1s, 32 L2 slices, 16 GDDR5 channels).
    let cfg = GpuConfig::default();
    println!("Simulated GPU: {} cores @{} MHz, {} KB L1/core, {} L2 slices, {} MCs",
        cfg.cores, cfg.core_mhz, cfg.l1_bytes / 1024, cfg.l2_slices, cfg.mcs);

    // A workload with heavy cross-core data sharing: AlexNet inference
    // from the Tango suite (95% replication ratio in the paper's Fig 1).
    let app = by_name("T-AlexNet").ok_or("unknown app")?.scaled(1, 4);

    let mut table = Table::new(
        "T-AlexNet: private-L1 baseline vs decoupled designs",
        &["design", "IPC", "L1 miss rate", "replication ratio", "load RTT (cyc)"],
    );
    let designs =
        [Design::Baseline, Design::Shared { nodes: 40 }, Design::flagship(&cfg)];
    let mut baseline_ipc = None;
    for design in designs {
        let mut sys = GpuSystem::build(&cfg, &design, &app, SimOptions::default())?;
        let stats = sys.run();
        let ipc = stats.ipc();
        let speedup = match baseline_ipc {
            None => {
                baseline_ipc = Some(ipc);
                "1.00x".to_string()
            }
            Some(base) => format!("{:.2}x", ipc / base),
        };
        table.row(
            stats.design.clone(),
            vec![
                format!("{ipc:.2} ({speedup})"),
                format!("{:.1}%", 100.0 * stats.l1_miss_rate()),
                format!("{:.1}%", 100.0 * stats.replication_ratio()),
                format!("{:.0}", stats.mean_load_rtt),
            ],
        );
    }
    println!("{table}");
    println!("Decoupling and sharing the L1s eliminates the replicated copies that");
    println!("waste capacity in the private baseline — the paper's headline effect.");
    Ok(())
}
