//! Replication analysis of one application (paper Fig 1 methodology).
//!
//! Reports the three classification inputs the paper uses — replication
//! ratio, raw L1 miss rate, and speedup under a 16× L1 — plus the
//! hypothetical no-replication upper bound of §II-A, and says whether the
//! app classifies as replication-sensitive under the paper's criteria.
//!
//! Run with: `cargo run --release --example replication_analysis [APP]`
//! (default APP = C-BFS)

use dcl1_repro::dcl1::{Design, GpuConfig, GpuSystem, SimOptions};
use dcl1_repro::workloads::by_name;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "C-BFS".into());
    let app = by_name(&name).ok_or("unknown application")?.scaled(1, 2);
    let cfg = GpuConfig::default();

    let run = |design: &Design, cfg: &GpuConfig| -> Result<_, Box<dyn std::error::Error>> {
        let mut sys = GpuSystem::build(cfg, design, &app, SimOptions::default())?;
        Ok(sys.run())
    };

    let base = run(&Design::Baseline, &cfg)?;
    let cfg16 = GpuConfig { l1_bytes: 16 * cfg.l1_bytes, ..cfg.clone() };
    let big = run(&Design::Baseline, &cfg16)?;
    let ideal = run(&Design::IdealSingleL1, &cfg)?;

    let repl = base.replication_ratio();
    let miss = base.l1_miss_rate();
    let speedup16 = big.ipc() / base.ipc();

    println!("== {name}: replication analysis (paper Fig 1 / SecII-A) ==");
    println!("replication ratio          : {:5.1}%  (misses found in another L1)", 100.0 * repl);
    println!("raw L1 miss rate           : {:5.1}%", 100.0 * miss);
    println!("IPC with 16x L1 capacity   : {speedup16:5.2}x");
    println!("mean replicas per line     : {:5.1}", base.mean_replicas);
    println!("ideal single L1 (SecII-A)  : {:5.2}x IPC, {:4.1}% miss rate",
        ideal.ipc() / base.ipc(), 100.0 * ideal.l1_miss_rate());

    // The paper's classification criteria (Section II-A).
    let sensitive = repl > 0.25 && miss > 0.50 && speedup16 > 1.05;
    println!(
        "classification             : replication-{}",
        if sensitive { "SENSITIVE (repl>25%, miss>50%, 16x speedup>5%)" } else { "insensitive" }
    );
    Ok(())
}
