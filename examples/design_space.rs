//! Design-space exploration: sweep the cluster count Z of the clustered
//! shared DC-L1 organization (paper Section VI) for one application and
//! report the three axes the paper trades off — performance, replication,
//! and NoC area/power.
//!
//! Run with: `cargo run --release --example design_space [APP]`
//! (default APP = R-KMN)

use dcl1_repro::bench::Table;
use dcl1_repro::dcl1::{Design, GpuConfig, GpuSystem, SimOptions};
use dcl1_repro::power::CrossbarModel;
use dcl1_repro::workloads::by_name;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "R-KMN".into());
    let app = by_name(&name).ok_or("unknown application")?.scaled(1, 4);
    let cfg = GpuConfig::default();
    let model = CrossbarModel::default();

    let base_design = Design::Baseline;
    let mut base_sys = GpuSystem::build(&cfg, &base_design, &app, SimOptions::default())?;
    let base = base_sys.run();
    let base_spec = base_design.topology(&cfg)?.noc_spec(&cfg);
    let base_area = model.noc_area_mm2(&base_spec);
    let base_static = model.noc_static_mw(&base_spec);

    let mut t = Table::new(
        format!("{name}: cluster-count sweep (normalized to private baseline)"),
        &["design", "IPC", "miss_rate", "mean_replicas", "noc_area", "noc_static"],
    );
    for z in [1usize, 2, 5, 10, 20, 40] {
        let design = match z {
            1 => Design::Shared { nodes: 40 },
            40 => Design::Private { nodes: 40 },
            z => Design::Clustered { nodes: 40, clusters: z, boost: false },
        };
        let mut sys = GpuSystem::build(&cfg, &design, &app, SimOptions::default())?;
        let stats = sys.run();
        let spec = design.topology(&cfg)?.noc_spec(&cfg);
        t.row(
            format!("C{z} ({})", stats.design),
            vec![
                format!("{:.2}x", stats.ipc() / base.ipc()),
                format!("{:.2}", stats.l1_miss_rate()),
                format!("{:.1}", stats.mean_replicas),
                format!("{:.2}x", model.noc_area_mm2(&spec) / base_area),
                format!("{:.2}x", model.noc_static_mw(&spec) / base_static),
            ],
        );
    }
    println!("{t}");
    println!("Fewer clusters → less replication but bigger crossbars; the paper picks");
    println!("C10 as the knee of this trade-off (Section VI-B).");
    Ok(())
}
