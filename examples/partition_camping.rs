//! Partition camping under the shared DC-L1 organization (paper §V-B).
//!
//! When an application's hot addresses all share one home residue, the
//! fully-shared design funnels them to a single home DC-L1 node; the
//! clustered design gives every cluster its own home for that range,
//! spreading the load 10 ways. This example makes the per-node access
//! imbalance visible.
//!
//! Run with: `cargo run --release --example partition_camping`

use dcl1_repro::bench::Table;
use dcl1_repro::dcl1::{Design, GpuConfig, GpuSystem, SimOptions};
use dcl1_repro::workloads::by_name;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = by_name("P-2MM").ok_or("unknown app")?.scaled(1, 4);
    let cfg = GpuConfig::default();

    let mut t = Table::new(
        "P-2MM (camped address stripe): load distribution across DC-L1 nodes",
        &["design", "IPC_norm", "hottest/mean node load", "top node share"],
    );
    let mut base_ipc = None;
    for design in [
        Design::Baseline,
        Design::Shared { nodes: 40 },
        Design::Clustered { nodes: 40, clusters: 10, boost: false },
        Design::flagship(&cfg),
    ] {
        let mut sys = GpuSystem::build(&cfg, &design, &app, SimOptions::default())?;
        let stats = sys.run();
        let ipc = stats.ipc();
        let norm = match base_ipc {
            None => {
                base_ipc = Some(ipc);
                1.0
            }
            Some(b) => ipc / b,
        };
        let total: u64 = stats.per_node_accesses.iter().sum();
        let top = stats.per_node_accesses.iter().max().copied().unwrap_or(0);
        t.row(
            stats.design.clone(),
            vec![
                format!("{norm:.2}x"),
                format!("{:.1}x", stats.node_load_imbalance()),
                format!("{:.0}%", 100.0 * top as f64 / total.max(1) as f64),
            ],
        );
    }
    println!("{t}");
    println!("Sh40 concentrates the camped stripe on one of 40 nodes; clustering");
    println!("replicates the home across 10 clusters and dissolves the hotspot.");
    Ok(())
}
